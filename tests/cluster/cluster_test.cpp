#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace sf::cluster {
namespace {

TEST(Cluster, PaperTestbedShape) {
  sim::Simulation sim;
  auto cluster = make_paper_testbed(sim);
  ASSERT_EQ(cluster->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cluster->node(i).spec().cores, 8.0);
    EXPECT_DOUBLE_EQ(cluster->node(i).spec().memory_bytes,
                     32.0 * (1ull << 30));
  }
  EXPECT_EQ(cluster->node(0).name(), "node0");
  EXPECT_EQ(cluster->network().node_count(), 4u);
}

TEST(Cluster, UniformClusterSized) {
  sim::Simulation sim;
  NodeSpec base;
  base.cores = 16;
  auto cluster = make_uniform_cluster(sim, 7, base);
  EXPECT_EQ(cluster->size(), 7u);
  EXPECT_DOUBLE_EQ(cluster->node(6).spec().cores, 16.0);
}

TEST(Cluster, LookupByName) {
  sim::Simulation sim;
  auto cluster = make_paper_testbed(sim);
  EXPECT_EQ(cluster->node_by_name("node2").net_id(),
            cluster->node(2).net_id());
  EXPECT_THROW(cluster->node_by_name("nope"), std::out_of_range);
}

TEST(Cluster, LookupByNetId) {
  sim::Simulation sim;
  auto cluster = make_paper_testbed(sim);
  const auto id = cluster->node(3).net_id();
  EXPECT_EQ(&cluster->node_by_net_id(id), &cluster->node(3));
  EXPECT_THROW(cluster->node_by_net_id(999), std::out_of_range);
}

TEST(Cluster, AddNodeAutoNames) {
  sim::Simulation sim;
  Cluster cluster(sim);
  auto& n = cluster.add_node(NodeSpec{});
  EXPECT_EQ(n.name(), "node0");
  auto& m = cluster.add_node(NodeSpec{.name = "special"});
  EXPECT_EQ(m.name(), "special");
  EXPECT_EQ(cluster.nodes().size(), 2u);
}

TEST(Cluster, NodesCommunicateOverSharedNetwork) {
  sim::Simulation sim;
  auto cluster = make_paper_testbed(sim);
  double done_at = -1;
  cluster->network().transfer(cluster->node(0).net_id(),
                              cluster->node(1).net_id(), 1.25e9,
                              [&] { done_at = sim.now(); });
  sim.run();
  // 1.25 GB at 1.25 GB/s + 200 µs latency.
  EXPECT_NEAR(done_at, 1.0002, 1e-6);
}

TEST(Cluster, HttpFabricWorksAcrossNodes) {
  sim::Simulation sim;
  auto cluster = make_paper_testbed(sim);
  cluster->http().listen(cluster->node(1).net_id(), 8080,
                         [](const net::HttpRequest&, net::Responder respond) {
                           respond({});
                         });
  bool ok = false;
  cluster->http().request(cluster->node(0).net_id(),
                          cluster->node(1).net_id(), 8080, {},
                          [&](net::HttpResponse r) { ok = r.ok(); });
  sim.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace sf::cluster
