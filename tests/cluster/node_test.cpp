#include "cluster/node.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::cluster {
namespace {

class NodeTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  net::FlowNetwork net{sim};
  NodeSpec spec_{.name = "w0", .cores = 4, .memory_bytes = 1000,
                 .disk_bandwidth_Bps = 100.0};
  Node node{sim, net, spec_};
};

TEST_F(NodeTest, SingleThreadedProcessTakesWorkSeconds) {
  double done_at = -1;
  node.run_process(3.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST_F(NodeTest, ContentionAboveCoreCount) {
  // 8 single-threaded tasks on 4 cores → 2× slowdown.
  std::vector<double> done;
  for (int i = 0; i < 8; ++i) {
    node.run_process(1.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 8u);
  EXPECT_NEAR(done.back(), 2.0, 1e-9);
}

TEST_F(NodeTest, CgroupQuotaCapsRate) {
  double done_at = -1;
  node.run_process(1.0, [&] { done_at = sim.now(); }, /*max_cores=*/0.5);
  sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST_F(NodeTest, CgroupSharesSkewContention) {
  // Weight 3 vs weight 1 on one busy core's worth of competition.
  sim::Simulation s2;
  net::FlowNetwork n2{s2};
  Node single{s2, n2, NodeSpec{.name = "n", .cores = 1}};
  std::vector<std::pair<char, double>> done;
  single.run_process(0.75, [&] { done.emplace_back('h', s2.now()); },
                     1.0, /*weight=*/3.0);
  single.run_process(0.25, [&] { done.emplace_back('l', s2.now()); },
                     1.0, /*weight=*/1.0);
  s2.run();
  ASSERT_EQ(done.size(), 2u);
  // Rates 0.75 and 0.25 → both finish at t=1.
  EXPECT_NEAR(done[0].second, 1.0, 1e-9);
  EXPECT_NEAR(done[1].second, 1.0, 1e-9);
}

TEST_F(NodeTest, KillProcessStopsIt) {
  bool ran = false;
  const auto pid = node.run_process(100.0, [&] { ran = true; });
  sim.call_at(1.0, [&] { EXPECT_TRUE(node.kill_process(pid)); });
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(node.running_processes(), 0u);
}

TEST_F(NodeTest, DynamicCapChange) {
  double done_at = -1;
  const auto pid = node.run_process(2.0, [&] { done_at = sim.now(); }, 2.0);
  sim.call_at(0.5, [&] { EXPECT_TRUE(node.set_process_cap(pid, 0.5)); });
  sim.run();
  // 1.0 done by 0.5 s, then 1.0 at 0.5 cores → 2 s more.
  EXPECT_NEAR(done_at, 2.5, 1e-9);
}

TEST_F(NodeTest, MemoryAccounting) {
  EXPECT_TRUE(node.allocate_memory(600));
  EXPECT_DOUBLE_EQ(node.memory_used(), 600);
  EXPECT_DOUBLE_EQ(node.memory_free(), 400);
  EXPECT_TRUE(node.allocate_memory(400));
  EXPECT_FALSE(node.allocate_memory(1));
  EXPECT_EQ(node.oom_events(), 1u);
  node.release_memory(500);
  EXPECT_TRUE(node.allocate_memory(1));
}

TEST_F(NodeTest, OomHandlerFires) {
  double requested = 0;
  node.set_oom_handler([&](double r) { requested = r; });
  EXPECT_FALSE(node.allocate_memory(5000));
  EXPECT_DOUBLE_EQ(requested, 5000);
}

TEST_F(NodeTest, ReleaseNeverGoesNegative) {
  node.release_memory(100);
  EXPECT_DOUBLE_EQ(node.memory_used(), 0);
}

TEST_F(NodeTest, DiskIoPaysBandwidth) {
  double done_at = -1;
  node.disk_io(200.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST_F(NodeTest, ConcurrentDiskIoShares) {
  std::vector<double> done;
  node.disk_io(100.0, [&] { done.push_back(sim.now()); });
  node.disk_io(100.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done.back(), 2.0, 1e-9);
}

TEST_F(NodeTest, ZeroByteDiskIoImmediate) {
  double done_at = -1;
  node.disk_io(0.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 0.0, 1e-12);
}

TEST_F(NodeTest, CpuUtilizationReflectsLoad) {
  node.run_process(10.0, [] {}, 1.0);
  node.run_process(10.0, [] {}, 1.0);
  sim.run_until(0.1);
  EXPECT_NEAR(node.cpu_utilization(), 2.0, 1e-9);
}

}  // namespace
}  // namespace sf::cluster
