#include "net/flow_network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace sf::net {
namespace {

class FlowNetworkTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  FlowNetwork net{sim};
  // 100 B/s NICs, 10 ms one-way latency → 20 ms per pair.
  NodeId a = net.add_node(100.0, 0.01);
  NodeId b = net.add_node(100.0, 0.01);
  NodeId c = net.add_node(100.0, 0.01);
};

TEST_F(FlowNetworkTest, SingleTransferPaysLatencyPlusBandwidth) {
  double done_at = -1;
  net.transfer(a, b, 100.0, [&] { done_at = sim.now(); });
  sim.run();
  // 0.02 s latency + 100 B at 100 B/s = 1.02 s.
  EXPECT_NEAR(done_at, 1.02, 1e-9);
}

TEST_F(FlowNetworkTest, ZeroBytesIsLatencyOnly) {
  double done_at = -1;
  net.transfer(a, b, 0.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 0.02, 1e-12);
}

TEST_F(FlowNetworkTest, HubEgressShared) {
  // Two flows out of `a` share a's egress: each gets 50 B/s.
  std::vector<double> done;
  net.transfer(a, b, 100.0, [&] { done.push_back(sim.now()); });
  net.transfer(a, c, 100.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.02, 1e-6);
  EXPECT_NEAR(done[1], 2.02, 1e-6);
}

TEST_F(FlowNetworkTest, IncastIngressShared) {
  std::vector<double> done;
  net.transfer(a, c, 100.0, [&] { done.push_back(sim.now()); });
  net.transfer(b, c, 100.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.02, 1e-6);
}

TEST_F(FlowNetworkTest, DisjointPairsDoNotInterfere) {
  NodeId d = net.add_node(100.0, 0.01);
  std::vector<double> done;
  net.transfer(a, b, 100.0, [&] { done.push_back(sim.now()); });
  net.transfer(c, d, 100.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.02, 1e-6);
  EXPECT_NEAR(done[1], 1.02, 1e-6);
}

TEST_F(FlowNetworkTest, BottleneckAsymmetry) {
  // Slow receiver constrains one flow; the other uses a's leftover egress.
  NodeId slow = net.add_node(25.0, 0.01);
  std::vector<std::pair<char, double>> done;
  net.transfer(a, slow, 50.0, [&] { done.emplace_back('s', sim.now()); });
  net.transfer(a, b, 150.0, [&] { done.emplace_back('f', sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // slow flow: 25 B/s → 2 s; fast flow: 75 B/s → 2 s... both ≈ 2.02.
  EXPECT_NEAR(done[0].second, 2.02, 1e-6);
  EXPECT_NEAR(done[1].second, 2.02, 1e-6);
}

TEST_F(FlowNetworkTest, DepartureReallocatesBandwidth) {
  std::vector<double> done;
  net.transfer(a, b, 50.0, [&] { done.push_back(sim.now()); });
  net.transfer(a, c, 150.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Shared 50/50 until t=1.02 (first done), then 100 B/s for the rest:
  // second sent 50 by then, 100 remaining → finishes 1 s later.
  EXPECT_NEAR(done[0], 1.02, 1e-6);
  EXPECT_NEAR(done[1], 2.02, 1e-6);
}

TEST_F(FlowNetworkTest, LoopbackBypassesNic) {
  net.set_loopback_bandwidth(1000.0);
  double loop_done = -1;
  double net_done = -1;
  net.transfer(a, a, 1000.0, [&] { loop_done = sim.now(); });
  net.transfer(a, b, 100.0, [&] { net_done = sim.now(); });
  sim.run();
  EXPECT_NEAR(loop_done, 1.0 + 1e-6, 1e-6);  // loopback latency ~1 µs
  EXPECT_NEAR(net_done, 1.02, 1e-6);         // NIC unaffected by loopback
}

TEST_F(FlowNetworkTest, FlakyNicStallsEveryNthBulkFlow) {
  net.set_node_flaky(a, 2, 0.5);
  EXPECT_EQ(net.node_flaky_every(a), 2u);
  double first = -1;
  double second = -1;
  net.transfer(a, b, 100.0, [&] { first = sim.now(); });
  sim.run();
  EXPECT_NEAR(first, 1.02, 1e-9);  // flow #1 through a: clean
  EXPECT_EQ(net.flaky_stalls(), 0u);
  const double t0 = sim.now();
  net.transfer(a, c, 100.0, [&] { second = sim.now(); });
  sim.run();
  // Flow #2 through a: stalled 0.5 s before entering the sharing pool.
  EXPECT_NEAR(second - t0, 1.52, 1e-9);
  EXPECT_EQ(net.flaky_stalls(), 1u);
}

TEST_F(FlowNetworkTest, FlakyNicIgnoresControlAndLoopbackTraffic) {
  net.set_node_flaky(a, 1, 5.0);  // every bulk flow would stall
  double ctrl = -1;
  bool loop = false;
  net.transfer(a, b, 0.0, [&] { ctrl = sim.now(); });
  net.transfer(a, a, 10.0, [&] { loop = true; });
  sim.run();
  EXPECT_NEAR(ctrl, 0.02, 1e-12);  // zero-byte: latency only, no stall
  EXPECT_TRUE(loop);
  EXPECT_EQ(net.flaky_stalls(), 0u);
}

TEST_F(FlowNetworkTest, FlakyNicHealResetsTheCounter) {
  net.set_node_flaky(b, 2, 1.0);
  net.transfer(a, b, 100.0, [] {});  // b's counter advances to 1
  sim.run();
  net.set_node_flaky(b, 0, 0.0);  // heal: disarm and reset
  EXPECT_EQ(net.node_flaky_every(b), 0u);
  const double t0 = sim.now();
  double done = -1;
  net.transfer(a, b, 100.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done - t0, 1.02, 1e-9);
  EXPECT_EQ(net.flaky_stalls(), 0u);
}

TEST_F(FlowNetworkTest, FlakyNicBadArgsThrow) {
  EXPECT_THROW(net.set_node_flaky(999, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(net.set_node_flaky(a, 2, -1.0), std::invalid_argument);
}

TEST_F(FlowNetworkTest, OnewayPartitionBlocksOneDirectionOnly) {
  net.set_partition_oneway(a, b, true);
  EXPECT_EQ(net.blocked_oneway_count(), 1u);
  EXPECT_TRUE(net.oneway_blocked(a, b));
  EXPECT_FALSE(net.oneway_blocked(b, a));  // reverse keeps flowing
  EXPECT_FALSE(net.partitioned(a, b));     // symmetric probes stay green
  double fwd_done = -1;
  double rev_done = -1;
  net.transfer(a, b, 100.0, [&] { fwd_done = sim.now(); });
  net.transfer(b, a, 100.0, [&] { rev_done = sim.now(); });
  sim.run_until(5.0);
  EXPECT_NEAR(rev_done, 1.02, 1e-9);  // unaffected by the forward cut
  EXPECT_LT(fwd_done, 0);             // pinned at rate 0
  EXPECT_TRUE(net.self_check().empty());
  net.set_partition_oneway(a, b, false);
  sim.run();
  // Healed at t=5: the stalled 100 B resume at full rate (latency was
  // already paid before the flow activated).
  EXPECT_NEAR(fwd_done, 6.0, 1e-6);
  EXPECT_EQ(net.blocked_oneway_count(), 0u);
}

TEST_F(FlowNetworkTest, OnewayPartitionPassesControlMessages) {
  net.set_partition_oneway(a, b, true);
  double ctrl = -1;
  net.transfer(a, b, 0.0, [&] { ctrl = sim.now(); });
  sim.run();
  // Zero-byte control traffic squeezes through, like the symmetric knob:
  // the 504/502 status replies that *tell* the router about the failure
  // must not themselves be blackholed.
  EXPECT_NEAR(ctrl, 0.02, 1e-12);
}

TEST_F(FlowNetworkTest, SymmetricPartitionImpliesBothDirectionsBlocked) {
  net.set_partition(a, b, true);
  EXPECT_TRUE(net.oneway_blocked(a, b));
  EXPECT_TRUE(net.oneway_blocked(b, a));
  EXPECT_EQ(net.blocked_oneway_count(), 0u);  // directed table untouched
  net.set_partition(a, b, false);
  EXPECT_FALSE(net.oneway_blocked(a, b));
}

TEST_F(FlowNetworkTest, OnewayPartitionBadArgsThrow) {
  EXPECT_THROW(net.set_partition_oneway(a, a, true), std::invalid_argument);
  EXPECT_THROW(net.set_partition_oneway(a, 999, true),
               std::invalid_argument);
}

TEST_F(FlowNetworkTest, CancelStopsFlow) {
  bool fired = false;
  const FlowId id = net.transfer(a, b, 1000.0, [&] { fired = true; });
  sim.call_at(0.5, [&] { EXPECT_TRUE(net.cancel(id)); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(FlowNetworkTest, RemainingBytesProgress) {
  const FlowId id = net.transfer(a, b, 100.0, [] {});
  sim.run_until(0.52);  // 0.5 s of transfer after latency
  EXPECT_NEAR(net.remaining_bytes(id), 50.0, 1e-6);
  EXPECT_NEAR(net.current_rate(id), 100.0, 1e-6);
  sim.run();
  EXPECT_DOUBLE_EQ(net.remaining_bytes(id), -1.0);
}

TEST_F(FlowNetworkTest, TotalBytesDeliveredAccumulates) {
  net.transfer(a, b, 100.0, [] {});
  net.transfer(b, c, 40.0, [] {});
  sim.run();
  EXPECT_NEAR(net.total_bytes_delivered(), 140.0, 1e-6);
}

TEST_F(FlowNetworkTest, UnknownNodeThrows) {
  EXPECT_THROW(net.transfer(a, 999, 1.0, [] {}), std::invalid_argument);
}

TEST_F(FlowNetworkTest, BadNicSpecThrows) {
  EXPECT_THROW(net.add_node(0.0, 0.01), std::invalid_argument);
  EXPECT_THROW(net.add_node(100.0, -1.0), std::invalid_argument);
}

// Property sweep: N equal flows through one egress finish together at
// latency + N * bytes / bandwidth.
class FlowFairnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlowFairnessSweep, EqualFlowsFinishTogether) {
  const int n = GetParam();
  sim::Simulation sim;
  FlowNetwork net(sim);
  const NodeId src = net.add_node(100.0, 0.0);
  std::vector<double> done;
  for (int i = 0; i < n; ++i) {
    const NodeId dst = net.add_node(1e9, 0.0);
    net.transfer(src, dst, 100.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(n));
  for (double t : done) EXPECT_NEAR(t, n * 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Counts, FlowFairnessSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace sf::net
