#include "net/http.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace sf::net {
namespace {

class HttpTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  FlowNetwork net{sim};
  HttpFabric http{sim, net};
  NodeId client = net.add_node(1e6, 0.001);
  NodeId server = net.add_node(1e6, 0.001);
};

TEST_F(HttpTest, RoundTripDeliversBody) {
  http.listen(server, 8080, [](const HttpRequest& req, Responder respond) {
    EXPECT_EQ(req.path, "/multiply");
    const int x = std::any_cast<int>(req.body);
    HttpResponse resp;
    resp.body = x * 2;
    respond(std::move(resp));
  });
  int result = 0;
  HttpRequest req;
  req.path = "/multiply";
  req.body = 21;
  http.request(client, server, 8080, std::move(req),
               [&](HttpResponse resp) {
                 EXPECT_TRUE(resp.ok());
                 result = std::any_cast<int>(resp.body);
               });
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST_F(HttpTest, NoListenerYields502) {
  int status = 0;
  http.request(client, server, 9999, {}, [&](HttpResponse resp) {
    status = resp.status;
    EXPECT_FALSE(resp.ok());
  });
  sim.run();
  EXPECT_EQ(status, kStatusConnectionRefused);
}

TEST_F(HttpTest, ClosedListenerRefuses) {
  http.listen(server, 8080, [](const HttpRequest&, Responder respond) {
    respond({});
  });
  http.close(server, 8080);
  EXPECT_FALSE(http.is_listening(server, 8080));
  int status = 0;
  http.request(client, server, 8080, {},
               [&](HttpResponse resp) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, kStatusConnectionRefused);
}

TEST_F(HttpTest, PayloadBytesDriveTransferTime) {
  http.listen(server, 8080, [](const HttpRequest&, Responder respond) {
    HttpResponse resp;
    resp.body_bytes = 1e6;  // 1 MB response
    respond(std::move(resp));
  });
  http.set_request_overhead(0.0);
  double done_at = -1;
  HttpRequest req;
  req.body_bytes = 2e6;  // 2 MB request
  http.request(client, server, 8080, std::move(req),
               [&](HttpResponse) { done_at = sim.now(); });
  sim.run();
  // 2 s request transfer + 1 s response at 1 MB/s, + 2×2 ms latency.
  EXPECT_NEAR(done_at, 3.004, 1e-6);
}

TEST_F(HttpTest, RequestOverheadAppliedPerHop) {
  http.listen(server, 8080,
              [](const HttpRequest&, Responder respond) { respond({}); });
  http.set_request_overhead(0.1);
  double done_at = -1;
  http.request(client, server, 8080, {},
               [&](HttpResponse) { done_at = sim.now(); });
  sim.run();
  // 0.1 overhead + 2 ms + 0.1 + 2 ms.
  EXPECT_NEAR(done_at, 0.204, 1e-9);
}

TEST_F(HttpTest, DeferredResponseSupported) {
  // The handler responds 5 s later — the queue-proxy / activator pattern.
  http.listen(server, 8080, [this](const HttpRequest&, Responder respond) {
    sim.call_in(5.0, [respond = std::move(respond)]() mutable {
      respond({});
    });
  });
  double done_at = -1;
  http.request(client, server, 8080, {},
               [&](HttpResponse) { done_at = sim.now(); });
  sim.run();
  EXPECT_GT(done_at, 5.0);
}

TEST_F(HttpTest, ConcurrentRequestsAllAnswered) {
  int served = 0;
  http.listen(server, 8080, [&](const HttpRequest&, Responder respond) {
    ++served;
    respond({});
  });
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    http.request(client, server, 8080, {},
                 [&](HttpResponse resp) { answered += resp.ok() ? 1 : 0; });
  }
  sim.run();
  EXPECT_EQ(served, 20);
  EXPECT_EQ(answered, 20);
  EXPECT_EQ(http.requests_sent(), 20u);
}

TEST_F(HttpTest, ListenerReplacement) {
  http.listen(server, 8080, [](const HttpRequest&, Responder respond) {
    HttpResponse r;
    r.body = std::string("old");
    respond(std::move(r));
  });
  http.listen(server, 8080, [](const HttpRequest&, Responder respond) {
    HttpResponse r;
    r.body = std::string("new");
    respond(std::move(r));
  });
  std::string got;
  http.request(client, server, 8080, {}, [&](HttpResponse resp) {
    got = std::any_cast<std::string>(resp.body);
  });
  sim.run();
  EXPECT_EQ(got, "new");
}

TEST_F(HttpTest, HeadersArePreserved) {
  std::string host_seen;
  http.listen(server, 80, [&](const HttpRequest& req, Responder respond) {
    host_seen = req.headers.at("Host");
    respond({});
  });
  HttpRequest req;
  req.headers["Host"] = "matmul.default.example.com";
  http.request(client, server, 80, std::move(req), [](HttpResponse) {});
  sim.run();
  EXPECT_EQ(host_seen, "matmul.default.example.com");
}

}  // namespace
}  // namespace sf::net
