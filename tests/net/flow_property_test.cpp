// Invariant tests for the max-min fair flow network over seeded random
// traffic patterns.

#include <gtest/gtest.h>

#include <vector>

#include "net/flow_network.hpp"
#include "sim/simulation.hpp"

namespace sf::net {
namespace {

class FlowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowPropertyTest, AllFlowsCompleteAndBytesConserved) {
  sim::Simulation sim(GetParam());
  FlowNetwork net(sim);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(net.add_node(sim.rng().uniform(50.0, 500.0), 0.001));
  }
  constexpr int kFlows = 40;
  double total_bytes = 0;
  int completed = 0;
  for (int i = 0; i < kFlows; ++i) {
    const NodeId src = nodes[sim.rng().index(nodes.size())];
    const NodeId dst = nodes[sim.rng().index(nodes.size())];
    const double bytes = sim.rng().uniform(1.0, 5000.0);
    const double start = sim.rng().uniform(0.0, 30.0);
    total_bytes += bytes;
    sim.call_at(start, [&, src, dst, bytes] {
      net.transfer(src, dst, bytes, [&] { ++completed; });
    });
  }
  sim.run();
  EXPECT_EQ(completed, kFlows);
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_NEAR(net.total_bytes_delivered(), total_bytes,
              total_bytes * 1e-6 + 1.0);
}

TEST_P(FlowPropertyTest, PerNodeRatesRespectNicCapacity) {
  sim::Simulation sim(GetParam());
  FlowNetwork net(sim);
  constexpr double kBandwidth = 100.0;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(net.add_node(kBandwidth, 0.0));

  std::vector<FlowId> flows;
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  for (int i = 0; i < 20; ++i) {
    const NodeId src = nodes[sim.rng().index(nodes.size())];
    NodeId dst = nodes[sim.rng().index(nodes.size())];
    if (src == dst) dst = nodes[(src + 1) % nodes.size()];
    flows.push_back(net.transfer(src, dst, 1e5, [] {}));
    endpoints.emplace_back(src, dst);
  }
  for (double t = 0.5; t < 20.0; t += 2.5) {
    sim.run_until(t);
    std::vector<double> egress(nodes.size(), 0);
    std::vector<double> ingress(nodes.size(), 0);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const double rate = net.current_rate(flows[i]);
      if (rate < 0) continue;  // finished
      egress[endpoints[i].first] += rate;
      ingress[endpoints[i].second] += rate;
    }
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      EXPECT_LE(egress[n], kBandwidth * (1 + 1e-9));
      EXPECT_LE(ingress[n], kBandwidth * (1 + 1e-9));
    }
  }
  sim.run();
}

TEST_P(FlowPropertyTest, WorkConservingSingleBottleneck) {
  // All flows into one sink: the sink NIC must run at full rate until the
  // last flow finishes.
  sim::Simulation sim(GetParam());
  FlowNetwork net(sim);
  const NodeId sink = net.add_node(100.0, 0.0);
  double total = 0;
  const int n = 3 + static_cast<int>(sim.rng().index(6));
  for (int i = 0; i < n; ++i) {
    const NodeId src = net.add_node(1e9, 0.0);
    const double bytes = sim.rng().uniform(100.0, 2000.0);
    total += bytes;
    net.transfer(src, sink, bytes, [] {});
  }
  sim.run();
  EXPECT_NEAR(sim.now(), total / 100.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowPropertyTest,
                         ::testing::Values(11, 23, 47, 1001));

}  // namespace
}  // namespace sf::net
