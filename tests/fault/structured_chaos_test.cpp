// Structured-failure tests: rack topology, correlated-incident expansion
// (PDU trips, deploy storms), rack cut-set partitions, gray failures
// (CPU stragglers, flaky NICs) — plan purity for all of them, burst-
// expansion determinism, apply/heal mechanics, and the split-brain
// recovery invariant (a healed rack cut loses no condor jobs and
// produces no duplicate DAG completions).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cluster/rack_map.hpp"
#include "condor/dagman.hpp"
#include "core/testbed.hpp"
#include "fault/injector.hpp"

namespace sf::fault {
namespace {

// ---- RackMap ---------------------------------------------------------

TEST(RackMapTest, BlocksSplitContiguouslyAndNearEqually) {
  const auto racks = cluster::RackMap::blocks(4, 2);
  EXPECT_EQ(racks.node_count(), 4u);
  EXPECT_EQ(racks.rack_count(), 2u);
  EXPECT_EQ(racks.nodes_in(0), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(racks.nodes_in(1), (std::vector<std::uint32_t>{2, 3}));
  // Uneven split: early racks get the extra node.
  const auto uneven = cluster::RackMap::blocks(5, 2);
  EXPECT_EQ(uneven.nodes_in(0), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(uneven.nodes_in(1), (std::vector<std::uint32_t>{3, 4}));
  for (std::uint32_t n = 0; n < 5; ++n) {
    EXPECT_EQ(uneven.rack_of(n), n < 3 ? 0u : 1u);
  }
}

TEST(RackMapTest, EqualityAndValidation) {
  EXPECT_EQ(cluster::RackMap::blocks(4, 2), cluster::RackMap::blocks(4, 2));
  EXPECT_NE(cluster::RackMap::blocks(4, 2), cluster::RackMap::blocks(4, 4));
  EXPECT_EQ(cluster::RackMap({0, 0, 1, 1}), cluster::RackMap::blocks(4, 2));
  EXPECT_THROW(cluster::RackMap({0, 2}), std::invalid_argument);  // gap
  EXPECT_THROW(cluster::RackMap::blocks(2, 3), std::invalid_argument);
  EXPECT_THROW(cluster::RackMap::blocks(2, 0), std::invalid_argument);
}

// ---- Plan purity for the new channels --------------------------------

FaultConfig structured_channels() {
  FaultConfig cfg;
  cfg.horizon_s = 900;
  cfg.rack_fail_mean_s = 120;
  cfg.rack_partition_mean_s = 100;
  cfg.deploy_storm_mean_s = 110;
  cfg.cpu_slow_mean_s = 70;
  cfg.flaky_nic_mean_s = 60;
  return cfg;
}

TEST(StructuredPlan, PureFunctionOfSeedConfigAndTopology) {
  const FaultConfig cfg = structured_channels();
  const auto racks = cluster::RackMap::blocks(6, 2);
  const auto a = make_fault_plan(7, cfg, racks);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, make_fault_plan(7, cfg, racks));
  EXPECT_NE(a, make_fault_plan(8, cfg, racks));
  // The topology is a plan input in its own right: same node count,
  // different rack layout ⇒ different plan.
  EXPECT_NE(a, make_fault_plan(7, cfg, cluster::RackMap::blocks(6, 3)));
  // And the node-count overload derives the same layout from cfg.racks.
  FaultConfig derived = cfg;
  derived.racks = 2;
  EXPECT_EQ(a, make_fault_plan(7, derived, 6));
}

TEST(StructuredPlan, GrayChannelsGateLikeTheirFamilies) {
  FaultConfig cfg;
  cfg.horizon_s = 900;
  cfg.cpu_slow_mean_s = 50;
  cfg.cpu_slow_factor = 0.2;
  cfg.flaky_nic_mean_s = 40;
  bool flaky_hit_head = false;
  for (const auto& ev : make_fault_plan(11, cfg, 4)) {
    if (ev.kind == FaultKind::kCpuSlow) {
      // CPU stragglers spare the head like crashes do: a slow schedd
      // exercises nothing but patience.
      EXPECT_GE(ev.node, 1u);
      EXPECT_DOUBLE_EQ(ev.factor, 0.2);
    } else {
      EXPECT_EQ(ev.kind, FaultKind::kFlakyNic);
      flaky_hit_head |= ev.node == 0;
    }
  }
  EXPECT_TRUE(flaky_hit_head);  // connectivity faults target all nodes

  // A single-rack topology has no cut-set: the channel emits nothing.
  FaultConfig cut_only;
  cut_only.horizon_s = 900;
  cut_only.rack_partition_mean_s = 30;
  cut_only.racks = 1;
  EXPECT_TRUE(make_fault_plan(11, cut_only, 4).empty());
}

// ---- Burst-expansion determinism -------------------------------------

TEST(StructuredPlan, RackFailExpandsToExactlyTheRacksCrashableNodes) {
  FaultConfig cfg;
  cfg.horizon_s = 1200;
  cfg.rack_fail_mean_s = 150;
  cfg.rack_fail_stagger_s = 0.5;
  cfg.rack_fail_downtime_s = 30;
  const auto racks = cluster::RackMap::blocks(6, 2);  // {0,1,2} | {3,4,5}
  const auto plan = make_fault_plan(21, cfg, racks);
  ASSERT_FALSE(plan.empty());

  std::map<std::uint32_t, std::vector<FaultEvent>> incidents;
  for (const auto& ev : plan) {
    EXPECT_EQ(ev.kind, FaultKind::kNodeCrash);
    EXPECT_NE(ev.incident, 0u);  // every burst member is tagged
    incidents[ev.incident].push_back(ev);
  }
  EXPECT_GT(incidents.size(), 1u);
  for (const auto& [id, members] : incidents) {
    // All members hit one rack, and cover exactly its crashable nodes
    // (the head is spared even when its rack's PDU trips).
    const std::uint32_t rack = racks.rack_of(members.front().node);
    std::vector<std::uint32_t> hit;
    for (const auto& ev : members) {
      EXPECT_EQ(racks.rack_of(ev.node), rack);
      EXPECT_DOUBLE_EQ(ev.duration_s, cfg.rack_fail_downtime_s);
      hit.push_back(ev.node);
    }
    std::sort(hit.begin(), hit.end());
    std::vector<std::uint32_t> expected;
    for (const std::uint32_t n : racks.nodes_in(rack)) {
      if (n >= 1) expected.push_back(n);  // spare_head_node
    }
    EXPECT_EQ(hit, expected) << "incident " << id;
    // The burst lands within one stagger window.
    double lo = members.front().at, hi = members.front().at;
    for (const auto& ev : members) {
      lo = std::min(lo, ev.at);
      hi = std::max(hi, ev.at);
    }
    EXPECT_LE(hi - lo, cfg.rack_fail_stagger_s);
  }
}

TEST(StructuredPlan, DeployStormPairsOutageWithKillBurst) {
  FaultConfig cfg;
  cfg.horizon_s = 1200;
  cfg.deploy_storm_mean_s = 140;
  cfg.deploy_storm_outage_s = 8;
  cfg.deploy_storm_kills = 3;
  cfg.deploy_storm_spread_s = 4;
  const auto plan = make_fault_plan(33, cfg, 4);
  ASSERT_FALSE(plan.empty());

  std::map<std::uint32_t, std::vector<FaultEvent>> incidents;
  for (const auto& ev : plan) {
    EXPECT_NE(ev.incident, 0u);
    incidents[ev.incident].push_back(ev);
  }
  for (const auto& [id, members] : incidents) {
    std::size_t outages = 0;
    double outage_at = 0;
    for (const auto& ev : members) {
      if (ev.kind == FaultKind::kRegistryOutage) {
        ++outages;
        outage_at = ev.at;
      }
    }
    EXPECT_EQ(outages, 1u) << "incident " << id;
    EXPECT_EQ(members.size(), 1u + cfg.deploy_storm_kills);
    for (const auto& ev : members) {
      if (ev.kind == FaultKind::kPodKill) {
        // Kills land inside the outage's spread window: replacements
        // pull against a dead registry.
        EXPECT_GE(ev.at, outage_at);
        EXPECT_LE(ev.at, outage_at + cfg.deploy_storm_spread_s);
      }
    }
  }
}

// ---- Apply / heal mechanics ------------------------------------------

TEST(StructuredInjector, CpuSlowPinsThenRestoresTheNode) {
  FaultConfig probe;
  probe.horizon_s = 1000;
  probe.cpu_slow_mean_s = 50;
  probe.cpu_slow_duration_s = 20;
  probe.cpu_slow_factor = 0.25;
  const auto full = make_fault_plan(9, probe, 4);
  ASSERT_GE(full.size(), 2u);
  FaultConfig cfg = probe;
  cfg.horizon_s = full[0].at + (full[1].at - full[0].at) / 2;

  core::PaperTestbed tb(42);
  FaultInjector injector(tb, cfg, 9);
  ASSERT_EQ(injector.plan().size(), 1u);
  const FaultEvent ev = injector.plan()[0];
  injector.arm();
  // Gray failures deliberately do NOT enable the lifecycle loop: the
  // node keeps heartbeating — that is what makes the failure gray.
  EXPECT_FALSE(tb.kube().node_lifecycle_enabled());

  cluster::Node& node = tb.cluster().node(ev.node);
  const double full_capacity = node.spec().cores;
  tb.sim().run_until(ev.at + 0.5 * ev.duration_s);
  EXPECT_DOUBLE_EQ(node.cpu_slowdown(), 0.25);
  EXPECT_DOUBLE_EQ(node.cpu().capacity(), full_capacity * 0.25);
  tb.sim().run_until(ev.at + ev.duration_s + 0.1);
  EXPECT_DOUBLE_EQ(node.cpu_slowdown(), 1.0);
  EXPECT_DOUBLE_EQ(node.cpu().capacity(), full_capacity);
  EXPECT_EQ(injector.cpu_slows(), 1u);
}

TEST(StructuredInjector, FlakyNicWindowsArmAndDisarmTheNic) {
  FaultConfig probe;
  probe.horizon_s = 1000;
  probe.flaky_nic_mean_s = 50;
  probe.flaky_nic_duration_s = 20;
  probe.flaky_nic_every = 3;
  probe.flaky_nic_stall_s = 1.0;
  const auto full = make_fault_plan(13, probe, 4);
  ASSERT_GE(full.size(), 2u);
  FaultConfig cfg = probe;
  cfg.horizon_s = full[0].at + (full[1].at - full[0].at) / 2;

  core::PaperTestbed tb(42);
  FaultInjector injector(tb, cfg, 13);
  ASSERT_EQ(injector.plan().size(), 1u);
  const FaultEvent ev = injector.plan()[0];
  injector.arm();

  net::FlowNetwork& net = tb.cluster().network();
  const net::NodeId nic = tb.cluster().node(ev.node).net_id();
  tb.sim().run_until(ev.at + 0.5 * ev.duration_s);
  EXPECT_EQ(net.node_flaky_every(nic), 3u);
  tb.sim().run_until(ev.at + ev.duration_s + 0.1);
  EXPECT_EQ(net.node_flaky_every(nic), 0u);
  EXPECT_EQ(injector.flaky_nics(), 1u);
}

TEST(StructuredInjector, RackPartitionCutsTheFullCutSetThenHeals) {
  FaultConfig probe;
  probe.horizon_s = 1000;
  probe.rack_partition_mean_s = 60;
  probe.rack_partition_duration_s = 15;
  probe.racks = 2;
  const auto full = make_fault_plan(17, probe, 4);
  ASSERT_GE(full.size(), 2u);
  FaultConfig cfg = probe;
  cfg.horizon_s = full[0].at + (full[1].at - full[0].at) / 2;

  core::PaperTestbed tb(42);
  FaultInjector injector(tb, cfg, 17);
  ASSERT_EQ(injector.plan().size(), 1u);
  const FaultEvent ev = injector.plan()[0];
  ASSERT_EQ(ev.kind, FaultKind::kRackPartition);
  injector.arm();
  // A rack cut makes nodes look dead to the control plane, so the
  // detection loop comes on (unlike a single pairwise block).
  EXPECT_TRUE(tb.kube().node_lifecycle_enabled());

  const auto& racks = injector.rack_map();
  net::FlowNetwork& net = tb.cluster().network();
  tb.sim().run_until(ev.at + 0.5 * ev.duration_s);
  for (std::uint32_t in : racks.nodes_in(ev.node)) {
    for (std::uint32_t out = 0; out < racks.node_count(); ++out) {
      const bool cross = racks.rack_of(out) != ev.node;
      EXPECT_EQ(net.partitioned(tb.cluster().node(in).net_id(),
                                tb.cluster().node(out).net_id()),
                cross)
          << in << " ~ " << out;
    }
  }
  tb.sim().run_until(ev.at + ev.duration_s + 0.1);
  for (std::uint32_t in : racks.nodes_in(ev.node)) {
    for (std::uint32_t out = 0; out < racks.node_count(); ++out) {
      EXPECT_FALSE(net.partitioned(tb.cluster().node(in).net_id(),
                                   tb.cluster().node(out).net_id()));
    }
  }
  EXPECT_EQ(injector.rack_partitions(), 1u);
}

// ---- Split-brain recovery invariant ----------------------------------
//
// A DAG executed through the condor pool while rack cuts repeatedly
// split the cluster: partitioned startds are unmatchable (negotiator
// reachability gating), stalled stage-in/-out flows resume on heal, and
// kubelet leases on the far side of the cut go stale and recover. Every
// node must complete exactly once — zero lost jobs, zero duplicates.

TEST(SplitBrainRecovery, RackCutHealsWithNoLostOrDuplicatedWork) {
  core::PaperTestbed tb(42);
  FaultConfig cfg;
  cfg.horizon_s = 900;
  cfg.racks = 2;
  cfg.rack_partition_mean_s = 45;
  cfg.rack_partition_duration_s = 12;
  FaultInjector injector(tb, cfg, 0x5B17ull);
  injector.arm();
  EXPECT_TRUE(tb.kube().node_lifecycle_enabled());

  condor::DagMan dag(tb.condor());
  int executions = 0;
  // Three chains of four nodes each, with enough work per node that the
  // DAG overlaps several cut/heal cycles.
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      condor::DagNode n;
      n.name = "c" + std::to_string(c) + "_n" + std::to_string(i);
      if (i > 0) {
        n.parents = {"c" + std::to_string(c) + "_n" + std::to_string(i - 1)};
      }
      n.job.executable = [&tb, &executions](
                             condor::ExecContext& ctx,
                             std::function<void(bool)> done) {
        ++executions;
        ctx.node->run_process(8.0,
                              [done = std::move(done)] { done(true); }, 1.0);
      };
      n.job.submit_volume = &tb.condor().submit_staging();
      dag.add_node(n);
    }
  }

  bool finished = false;
  bool ok = false;
  dag.run([&](bool success) {
    finished = true;
    ok = success;
  });
  // The lifecycle loop keeps events pending forever; drive to the DAG's
  // completion, not queue exhaustion.
  while (!finished && tb.sim().has_pending_events() &&
         tb.sim().now() < 2000.0) {
    tb.sim().step();
  }

  ASSERT_TRUE(finished) << "DAG stuck at t=" << tb.sim().now();
  EXPECT_TRUE(ok);
  // The run actually crossed rack cuts.
  EXPECT_GT(injector.rack_partitions(), 0u);
  // Exactly-once completion: every DAG node done, none done twice.
  EXPECT_EQ(dag.completed_nodes(), dag.node_count());
  EXPECT_EQ(static_cast<std::size_t>(executions),
            dag.node_count() + dag.total_retries());
  // Zero lost condor jobs: the queue drained completely.
  EXPECT_EQ(tb.condor().idle_jobs(), 0u);
  EXPECT_EQ(tb.condor().running_jobs(), 0u);
  EXPECT_EQ(tb.condor().completed_jobs(), dag.node_count());
}

}  // namespace
}  // namespace sf::fault
