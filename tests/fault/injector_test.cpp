// sf::fault tests: plan purity and channel gating, injector apply/heal
// mechanics, and the two acceptance properties from the fault-injection
// issue — chaos sweeps that are bit-identical at any SweepRunner thread
// count, and end-to-end recovery (crashes + registry outages) that
// completes every DAG task with zero lost Condor jobs.

#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/testbed.hpp"
#include "sim/sweep_runner.hpp"

namespace sf::fault {
namespace {

FaultConfig all_channels() {
  FaultConfig cfg;
  cfg.horizon_s = 600;
  cfg.node_crash_mean_s = 60;
  cfg.pull_outage_mean_s = 45;
  cfg.pod_kill_mean_s = 40;
  cfg.degrade_mean_s = 30;
  cfg.partition_mean_s = 50;
  cfg.oneway_partition_mean_s = 55;
  return cfg;
}

TEST(FaultPlan, PureFunctionOfItsInputs) {
  const FaultConfig cfg = all_channels();
  const auto a = make_fault_plan(7, cfg, 4);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, make_fault_plan(7, cfg, 4));
  EXPECT_NE(a, make_fault_plan(8, cfg, 4));
  EXPECT_NE(a, make_fault_plan(7, cfg, 6));
}

TEST(FaultPlan, DisabledChannelsEmitNothing) {
  EXPECT_TRUE(make_fault_plan(7, FaultConfig{}, 4).empty());  // all off
  FaultConfig cfg;
  cfg.horizon_s = 600;
  cfg.pod_kill_mean_s = 20;
  const auto plan = make_fault_plan(7, cfg, 4);
  EXPECT_FALSE(plan.empty());
  for (const auto& ev : plan) EXPECT_EQ(ev.kind, FaultKind::kPodKill);
}

TEST(FaultPlan, EventsSortedAndWithinHorizon) {
  double prev = 0;
  for (const auto& ev : make_fault_plan(3, all_channels(), 4)) {
    EXPECT_GE(ev.at, prev);
    EXPECT_LT(ev.at, 600.0);
    prev = ev.at;
  }
}

TEST(FaultPlan, SparingTheHeadNodeGatesCrashesOnly) {
  FaultConfig cfg = all_channels();
  bool connectivity_hit_head = false;
  for (const auto& ev : make_fault_plan(11, cfg, 4)) {
    if (ev.kind == FaultKind::kNodeCrash) {
      EXPECT_GE(ev.node, 1u);
    }
    if ((ev.kind == FaultKind::kLinkDegrade ||
         ev.kind == FaultKind::kPartition) &&
        ev.node == 0) {
      connectivity_hit_head = true;
    }
    if (ev.kind == FaultKind::kPartition) {
      EXPECT_NE(ev.node, ev.peer);
    }
  }
  // Degradation / partitions are transient, so they target all nodes.
  EXPECT_TRUE(connectivity_hit_head);

  cfg.spare_head_node = false;
  bool crash_hit_head = false;
  for (const auto& ev : make_fault_plan(11, cfg, 4)) {
    crash_hit_head |= ev.kind == FaultKind::kNodeCrash && ev.node == 0;
  }
  EXPECT_TRUE(crash_hit_head);
}

TEST(FaultInjectorTest, CrashesFireAndRebootsRestoreEveryNode) {
  core::PaperTestbed tb(42);
  FaultConfig cfg;
  cfg.horizon_s = 100;
  cfg.node_crash_mean_s = 20;
  cfg.node_downtime_s = 10;
  FaultInjector injector(tb, cfg, 99);
  ASSERT_FALSE(injector.plan().empty());
  injector.arm();
  injector.arm();  // idempotent
  // Arming the crash channel turns on the detection loop.
  EXPECT_TRUE(tb.kube().node_lifecycle_enabled());

  tb.sim().run_until(cfg.horizon_s + cfg.node_downtime_s + 1.0);
  EXPECT_GT(injector.node_crashes(), 0u);
  // Skipped crash-while-down events schedule no reboot, so these balance.
  EXPECT_EQ(injector.node_reboots(), injector.node_crashes());
  for (std::size_t i = 0; i < tb.cluster().size(); ++i) {
    EXPECT_TRUE(tb.cluster().node(i).up()) << "node " << i;
  }
}

TEST(FaultInjectorTest, PartitionBlocksThePairThenHeals) {
  // Plan purity lets us probe the timeline first, then shrink the horizon
  // to isolate exactly the first partition event.
  FaultConfig probe;
  probe.horizon_s = 1000;
  probe.partition_mean_s = 40;
  const auto full = make_fault_plan(5, probe, 4);
  ASSERT_GE(full.size(), 2u);
  FaultConfig cfg = probe;
  cfg.horizon_s = full[0].at + (full[1].at - full[0].at) / 2;

  core::PaperTestbed tb(42);
  FaultInjector injector(tb, cfg, 5);
  ASSERT_EQ(injector.plan().size(), 1u);
  const FaultEvent ev = injector.plan()[0];
  injector.arm();
  // No crash channel ⇒ the eternal-event lifecycle loop stays off.
  EXPECT_FALSE(tb.kube().node_lifecycle_enabled());

  net::FlowNetwork& net = tb.cluster().network();
  const net::NodeId a = tb.cluster().node(ev.node).net_id();
  const net::NodeId b = tb.cluster().node(ev.peer).net_id();
  tb.sim().run_until(ev.at + 0.5 * ev.duration_s);
  EXPECT_TRUE(net.partitioned(a, b));
  EXPECT_TRUE(net.partitioned(b, a));
  tb.sim().run_until(ev.at + ev.duration_s + 0.1);
  EXPECT_FALSE(net.partitioned(a, b));
  EXPECT_EQ(injector.partitions(), 1u);
}

TEST(FaultInjectorTest, OnewayPartitionCutsOneDirectionThenHeals) {
  FaultConfig probe;
  probe.horizon_s = 1000;
  probe.oneway_partition_mean_s = 40;
  const auto full = make_fault_plan(5, probe, 4);
  ASSERT_GE(full.size(), 2u);
  FaultConfig cfg = probe;
  cfg.horizon_s = full[0].at + (full[1].at - full[0].at) / 2;

  core::PaperTestbed tb(42);
  FaultInjector injector(tb, cfg, 5);
  ASSERT_EQ(injector.plan().size(), 1u);
  const FaultEvent ev = injector.plan()[0];
  EXPECT_EQ(ev.kind, FaultKind::kOnewayPartition);
  EXPECT_NE(ev.node, ev.peer);
  injector.arm();
  // A gray channel: no crash shape, so the lifecycle loop stays off —
  // nothing ever looks dead to the control plane.
  EXPECT_FALSE(tb.kube().node_lifecycle_enabled());

  net::FlowNetwork& net = tb.cluster().network();
  const net::NodeId src = tb.cluster().node(ev.node).net_id();
  const net::NodeId dst = tb.cluster().node(ev.peer).net_id();
  tb.sim().run_until(ev.at + 0.5 * ev.duration_s);
  EXPECT_TRUE(net.oneway_blocked(src, dst));
  EXPECT_FALSE(net.oneway_blocked(dst, src));  // requests arrive, replies die
  EXPECT_FALSE(net.partitioned(src, dst));     // heartbeats keep passing
  tb.sim().run_until(ev.at + ev.duration_s + 0.1);
  EXPECT_FALSE(net.oneway_blocked(src, dst));
  EXPECT_EQ(net.blocked_oneway_count(), 0u);
  EXPECT_EQ(injector.oneway_partitions(), 1u);
  EXPECT_EQ(injector.residual_depth(), 0u);
}

// ---------------------------------------------------------------------
// Acceptance: chaos determinism. A sweep of full-stack chaos points must
// produce bit-identical results at 1 and 4 SweepRunner threads (and on
// re-run). Doubles are compared exactly — that IS the contract.

struct ChaosPoint {
  double makespan = 0;
  bool ok = false;
  std::uint64_t applied = 0;
  std::uint64_t skipped = 0;
  std::uint64_t condor_aborts = 0;
  std::uint64_t pods_replaced = 0;

  friend bool operator==(const ChaosPoint&, const ChaosPoint&) = default;
};

ChaosPoint run_chaos_point(double intensity) {
  core::TestbedOptions opts;
  opts.prestage_images = false;
  opts.dag_retries = 4;
  opts.provisioning.request_timeout_s = 45;
  core::PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  FaultConfig cfg;
  cfg.horizon_s = 1200;
  cfg.racks = 2;
  if (intensity > 0) {
    cfg.node_crash_mean_s = 200 / intensity;
    cfg.pull_outage_mean_s = 150 / intensity;
    cfg.pod_kill_mean_s = 120 / intensity;
    cfg.degrade_mean_s = 100 / intensity;
    cfg.partition_mean_s = 160 / intensity;
    // Structured channels: correlated incidents + gray failures ride the
    // same determinism contract.
    cfg.rack_fail_mean_s = 400 / intensity;
    cfg.rack_partition_mean_s = 300 / intensity;
    cfg.deploy_storm_mean_s = 260 / intensity;
    cfg.cpu_slow_mean_s = 140 / intensity;
    cfg.cpu_slow_factor = 0.25;
    cfg.flaky_nic_mean_s = 110 / intensity;
    cfg.flaky_nic_every = 4;
    cfg.flaky_nic_stall_s = 1.0;
  }
  FaultInjector injector(tb, cfg, 0xC4A05EEDull);
  injector.arm();

  const auto result =
      tb.run_concurrent_mix(4, 6, metrics::MixPoint{0.5, 0.0, 0.5});
  ChaosPoint p;
  p.makespan = result.slowest;
  p.ok = result.all_succeeded;
  p.applied = injector.applied_total();
  p.skipped = injector.skipped();
  p.condor_aborts = tb.condor().jobs_aborted();
  p.pods_replaced = tb.kube().controller_pods_replaced();
  return p;
}

std::vector<ChaosPoint> chaos_sweep(int threads) {
  const std::vector<double> levels{0.0, 1.0, 3.0};
  sim::SweepRunner runner(threads);
  return runner.run(levels.size(), [&levels](std::size_t i) {
    return run_chaos_point(levels[i]);
  });
}

TEST(ChaosDeterminism, SweepIsBitIdenticalAcrossThreadCounts) {
  const auto serial = chaos_sweep(1);
  const auto parallel = chaos_sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
  EXPECT_EQ(serial, chaos_sweep(1));  // and repeatable outright
  // The faulted points actually saw chaos and still recovered.
  EXPECT_GT(serial.back().applied, 0u);
  for (const auto& p : serial) EXPECT_TRUE(p.ok);
}

// ---------------------------------------------------------------------
// Acceptance: recovery invariant. A fig6-style concurrent workflow set
// under injected node crashes + image-pull failures completes every DAG
// task within the configured retry budget, with zero lost Condor jobs.

TEST(ChaosRecovery, CrashesAndPullFailuresLoseNoWork) {
  core::TestbedOptions opts;
  opts.prestage_images = false;  // cold pulls: the outage channel bites
  opts.dag_retries = 4;
  opts.provisioning.request_timeout_s = 45;
  core::PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  FaultConfig cfg;
  cfg.horizon_s = 1800;
  cfg.node_crash_mean_s = 120;
  cfg.node_downtime_s = 25;
  cfg.pull_outage_mean_s = 90;
  cfg.pull_outage_duration_s = 6;
  FaultInjector injector(tb, cfg, 0xFEEDull);
  injector.arm();

  const auto result =
      tb.run_concurrent_mix(6, 8, metrics::MixPoint{0.5, 0.0, 0.5});

  // The run was actually under fire…
  EXPECT_GT(injector.node_crashes(), 0u);
  EXPECT_GT(injector.registry_outages(), 0u);
  // …every workflow still finished within the retry budget…
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_GT(result.slowest, 0.0);
  // …and the Condor queue drained completely: nothing idle, nothing
  // stuck running, every DAG task accounted for (aborted attempts were
  // resubmitted and completed as fresh jobs).
  EXPECT_EQ(tb.condor().idle_jobs(), 0u);
  EXPECT_EQ(tb.condor().running_jobs(), 0u);
  EXPECT_GE(tb.condor().completed_jobs(), 6u * 8u);
  EXPECT_EQ(tb.condor().failed_jobs(), tb.condor().jobs_aborted());
}

}  // namespace
}  // namespace sf::fault
