#include <gtest/gtest.h>

#include "container/image.hpp"
#include "knative/serving.hpp"
#include "sim/simulation.hpp"

namespace sf::knative {
namespace {

/// Two warm pods, one kept busy: least-loaded routing must steer new
/// requests to the idle pod; round-robin alternates regardless.
class LoadBalancingTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  KnativeServing serving{kube, cl->node(0)};
  std::vector<std::string> served_by;

  void SetUp() override {
    hub.push(container::make_task_image("matmul"));
    KnServiceSpec spec;
    spec.name = "fn";
    spec.container.name = "fn";
    spec.container.image = "matmul:latest";
    spec.container.cpu_limit = 1.0;
    spec.handler = [this](const net::HttpRequest& req, FunctionContext& ctx,
                          net::Responder respond) {
      served_by.push_back(ctx.pod_name);
      const double work = std::any_cast<double>(req.body);
      ctx.exec(work, [respond = std::move(respond)](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        respond(std::move(resp));
      });
    };
    spec.annotations.min_scale = 2;
    spec.annotations.max_scale = 2;
    spec.annotations.container_concurrency = 0;
    serving.create_service(std::move(spec));
    sim.run_until(30.0);
    ASSERT_EQ(serving.ready_replicas("fn"), 2);
  }

  void invoke(double work) {
    net::HttpRequest req;
    req.body = work;
    serving.invoke(cl->node(0).net_id(), "fn", std::move(req),
                   [](net::HttpResponse) {});
  }
};

TEST_F(LoadBalancingTest, RoundRobinAlternates) {
  serving.set_load_balancing(LoadBalancingPolicy::kRoundRobin);
  for (int i = 0; i < 4; ++i) invoke(0.05);
  sim.run_until(sim.now() + 10.0);
  ASSERT_EQ(served_by.size(), 4u);
  EXPECT_NE(served_by[0], served_by[1]);
  EXPECT_EQ(served_by[0], served_by[2]);
}

TEST_F(LoadBalancingTest, LeastLoadedAvoidsBusyPod) {
  serving.set_load_balancing(LoadBalancingPolicy::kLeastLoaded);
  EXPECT_EQ(serving.load_balancing(), LoadBalancingPolicy::kLeastLoaded);
  // Pin a long request first; it occupies one pod.
  invoke(30.0);
  sim.run_until(sim.now() + 1.0);
  ASSERT_EQ(served_by.size(), 1u);
  const std::string busy = served_by[0];
  // Every subsequent short request must land on the other pod.
  for (int i = 0; i < 5; ++i) {
    invoke(0.05);
    sim.run_until(sim.now() + 1.0);
  }
  ASSERT_EQ(served_by.size(), 6u);
  for (std::size_t i = 1; i < served_by.size(); ++i) {
    EXPECT_NE(served_by[i], busy);
  }
}

TEST_F(LoadBalancingTest, DefaultPolicyIsRoundRobin) {
  EXPECT_EQ(serving.load_balancing(), LoadBalancingPolicy::kRoundRobin);
}

}  // namespace
}  // namespace sf::knative
