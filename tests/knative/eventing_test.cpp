#include "knative/eventing.hpp"

#include <gtest/gtest.h>

#include "container/image.hpp"
#include "sim/simulation.hpp"

namespace sf::knative {
namespace {

class EventingTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  KnativeServing serving{kube, cl->node(0)};
  Broker broker{serving, cl->node(0)};
  std::vector<std::string> received;  // "<service>:<type>:<job ext>"

  void SetUp() override { hub.push(container::make_task_image("matmul")); }

  void deploy_subscriber(const std::string& name) {
    KnServiceSpec spec;
    spec.name = name;
    spec.container.name = name;
    spec.container.image = "matmul:latest";
    spec.container.cpu_limit = 1.0;
    spec.handler = [this, name](const net::HttpRequest& req,
                                FunctionContext& ctx,
                                net::Responder respond) {
      const CloudEvent& event = event_from_request(req);
      auto job = event.extensions.find("job");
      received.push_back(name + ":" + event.type + ":" +
                         (job == event.extensions.end() ? "" : job->second));
      ctx.exec(0.01, [respond = std::move(respond)](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        respond(std::move(resp));
      });
    };
    spec.annotations.min_scale = 1;
    serving.create_service(std::move(spec));
  }

  bool publish_and_wait(CloudEvent event) {
    bool delivered = false;
    bool done = false;
    broker.publish(cl->node(1).net_id(), std::move(event),
                   [&](bool ok) {
                     delivered = ok;
                     done = true;
                   });
    while (!done && sim.has_pending_events()) sim.step();
    return delivered;
  }

  static CloudEvent task_done(const std::string& job) {
    CloudEvent event;
    event.type = "task.done";
    event.source = "test";
    event.extensions["job"] = job;
    event.data_bytes = 100;
    return event;
  }
};

TEST_F(EventingTest, DeliversToMatchingTrigger) {
  deploy_subscriber("listener");
  sim.run_until(30.0);
  broker.add_trigger("t1", "task.done", "listener");
  EXPECT_TRUE(publish_and_wait(task_done("j0")));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "listener:task.done:j0");
  EXPECT_EQ(broker.events_received(), 1u);
  EXPECT_EQ(broker.deliveries(), 1u);
}

TEST_F(EventingTest, TypeFilterExcludesOtherEvents) {
  deploy_subscriber("listener");
  sim.run_until(30.0);
  broker.add_trigger("t1", "task.done", "listener");
  CloudEvent other;
  other.type = "workflow.started";
  EXPECT_TRUE(publish_and_wait(std::move(other)));  // nothing matches: ok
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(broker.deliveries(), 0u);
}

TEST_F(EventingTest, EmptyTypeMatchesEverything) {
  deploy_subscriber("listener");
  sim.run_until(30.0);
  broker.add_trigger("all", "", "listener");
  publish_and_wait(task_done("a"));
  CloudEvent other;
  other.type = "anything.else";
  publish_and_wait(std::move(other));
  EXPECT_EQ(received.size(), 2u);
}

TEST_F(EventingTest, ExtensionFilterNarrowsDelivery) {
  deploy_subscriber("listener");
  sim.run_until(30.0);
  broker.add_trigger("only-j1", "task.done", "listener", {{"job", "j1"}});
  publish_and_wait(task_done("j0"));
  publish_and_wait(task_done("j1"));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "listener:task.done:j1");
}

TEST_F(EventingTest, FanoutToMultipleTriggers) {
  deploy_subscriber("a");
  deploy_subscriber("b");
  sim.run_until(30.0);
  broker.add_trigger("ta", "task.done", "a");
  broker.add_trigger("tb", "task.done", "b");
  EXPECT_TRUE(publish_and_wait(task_done("j")));
  EXPECT_EQ(received.size(), 2u);
  EXPECT_EQ(broker.deliveries(), 2u);
}

TEST_F(EventingTest, UnknownSubscriberGoesToDeadLetters) {
  broker.set_retry_backoff(0.05);
  broker.add_trigger("broken", "task.done", "no-such-service");
  EXPECT_FALSE(publish_and_wait(task_done("j")));
  EXPECT_EQ(broker.failed_deliveries(), 1u);
  ASSERT_EQ(broker.dead_letters().size(), 1u);
  EXPECT_EQ(broker.dead_letters().front().extensions.at("job"), "j");
}

TEST_F(EventingTest, EachExhaustedDeliveryDeadLettersExactlyOnce) {
  broker.set_retry_backoff(0.05);
  broker.set_retry_limit(2);
  broker.add_trigger("broken", "task.done", "no-such-service");
  EXPECT_FALSE(publish_and_wait(task_done("a")));
  EXPECT_FALSE(publish_and_wait(task_done("b")));
  EXPECT_FALSE(publish_and_wait(task_done("c")));
  // One failed delivery and one dead letter per event — retries within a
  // delivery must not multiply either count.
  EXPECT_EQ(broker.failed_deliveries(), 3u);
  ASSERT_EQ(broker.dead_letters().size(), 3u);
  EXPECT_EQ(broker.dead_letters()[0].extensions.at("job"), "a");
  EXPECT_EQ(broker.dead_letters()[2].extensions.at("job"), "c");
  EXPECT_EQ(broker.deliveries(), 0u);
}

TEST_F(EventingTest, DeadLetterLegDoesNotBlockHealthySubscribers) {
  deploy_subscriber("listener");
  sim.run_until(30.0);
  broker.set_retry_backoff(0.05);
  broker.add_trigger("ok", "task.done", "listener");
  broker.add_trigger("broken", "task.done", "no-such-service");
  publish_and_wait(task_done("j"));
  EXPECT_EQ(received.size(), 1u);
  EXPECT_EQ(broker.deliveries(), 1u);
  EXPECT_EQ(broker.failed_deliveries(), 1u);
  EXPECT_EQ(broker.dead_letters().size(), 1u);
}

TEST_F(EventingTest, DeliveryRetriesThroughColdStart) {
  // Subscriber scaled to zero: the first delivery attempt rides the
  // activator (not an error), so delivery succeeds including cold start.
  KnServiceSpec spec;
  spec.name = "coldsub";
  spec.container.name = "coldsub";
  spec.container.image = "matmul:latest";
  spec.container.cpu_limit = 1.0;
  spec.container.boot_s = 0.5;
  spec.handler = [this](const net::HttpRequest& req, FunctionContext& ctx,
                        net::Responder respond) {
    received.push_back("coldsub:" + event_from_request(req).type + ":");
    ctx.exec(0.01, [respond = std::move(respond)](bool) mutable {
      respond({});
    });
  };
  spec.annotations.initial_scale = 0;
  serving.create_service(std::move(spec));
  sim.run_until(1.0);
  broker.add_trigger("t", "task.done", "coldsub");
  EXPECT_TRUE(publish_and_wait(task_done("j")));
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(EventingTest, RemoveTriggerStopsDelivery) {
  deploy_subscriber("listener");
  sim.run_until(30.0);
  broker.add_trigger("t1", "task.done", "listener");
  EXPECT_TRUE(broker.remove_trigger("t1"));
  EXPECT_FALSE(broker.remove_trigger("t1"));
  publish_and_wait(task_done("j"));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(broker.trigger_count(), 0u);
}

}  // namespace
}  // namespace sf::knative
