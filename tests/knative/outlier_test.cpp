// Outlier ejection + admission control at the router: consecutive-5xx and
// success-rate ejection, capped exponential windows, max_ejection_percent,
// probation re-admission, panic routing, token-bucket 429s, the router
// per-attempt deadline, and the machine-readable failure taxonomy.

#include "knative/outlier.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "container/image.hpp"
#include "knative/serving.hpp"
#include "sim/simulation.hpp"

namespace sf::knative {
namespace {

// ---- Detector unit tests (no cluster) ----------------------------------

OutlierConfig detector_config() {
  OutlierConfig cfg;
  cfg.enabled = true;
  cfg.consecutive_5xx = 3;
  cfg.consecutive_gateway = 0;
  cfg.interval_s = 10.0;
  cfg.base_ejection_s = 30.0;
  cfg.max_ejection_s = 300.0;
  cfg.max_ejection_percent = 100;
  return cfg;
}

TEST(OutlierDetector, ConsecutiveFailuresEject) {
  OutlierDetector det(detector_config());
  det.on_response("a", 200, 0.01, 0.0);
  det.on_response("b", 500, 0.01, 0.1);
  det.on_response("b", 500, 0.01, 0.2);
  EXPECT_FALSE(det.ejected("b", 0.3));  // two failures: below threshold
  det.on_response("b", 500, 0.01, 0.3);
  EXPECT_TRUE(det.ejected("b", 0.4));
  EXPECT_FALSE(det.ejected("a", 0.4));
  EXPECT_EQ(det.total_ejections(), 1u);
  EXPECT_EQ(det.ejected_count(), 1u);
  ASSERT_EQ(det.ejected_backends().size(), 1u);
  EXPECT_EQ(det.ejected_backends()[0], "b");
}

TEST(OutlierDetector, SuccessResetsTheStreak) {
  OutlierDetector det(detector_config());
  det.on_response("a", 500, 0.01, 0.0);
  det.on_response("a", 500, 0.01, 0.1);
  det.on_response("a", 200, 0.01, 0.2);  // streak broken
  det.on_response("a", 500, 0.01, 0.3);
  det.on_response("a", 500, 0.01, 0.4);
  EXPECT_FALSE(det.ejected("a", 0.5));
}

TEST(OutlierDetector, EjectionWindowExpiresIntoProbation) {
  OutlierDetector det(detector_config());
  for (int i = 0; i < 3; ++i) det.on_response("a", 500, 0.01, 0.1 * i);
  EXPECT_TRUE(det.ejected("a", 1.0));
  EXPECT_TRUE(det.ejected("a", 29.0));   // base window is 30 s
  EXPECT_FALSE(det.ejected("a", 31.0));  // expired: probing again
  EXPECT_EQ(det.total_readmissions(), 1u);
  // Probe succeeds: host fully healthy, a later ejection starts at base.
  det.on_response("a", 200, 0.01, 31.5);
  EXPECT_FALSE(det.ejected("a", 32.0));
}

TEST(OutlierDetector, ProbationFailureReEjectsWithDoubledWindow) {
  OutlierDetector det(detector_config());
  for (int i = 0; i < 3; ++i) det.on_response("a", 500, 0.01, 0.1 * i);
  EXPECT_FALSE(det.ejected("a", 31.0));   // window expired -> probation
  det.on_response("a", 500, 0.01, 31.5);  // probe fails: instant re-eject
  EXPECT_EQ(det.total_ejections(), 2u);
  EXPECT_TRUE(det.ejected("a", 31.6));
  // Second window is base * 2 = 60 s from the re-ejection.
  EXPECT_TRUE(det.ejected("a", 31.5 + 59.0));
  EXPECT_FALSE(det.ejected("a", 31.5 + 61.0));
}

TEST(OutlierDetector, MaxEjectionPercentCapsEjections) {
  OutlierConfig cfg = detector_config();
  cfg.max_ejection_percent = 34;  // of 3 hosts -> allowance 1
  OutlierDetector det(cfg);
  det.on_response("c", 200, 0.01, 0.0);
  for (int i = 0; i < 3; ++i) det.on_response("a", 500, 0.01, 0.1 + 0.1 * i);
  for (int i = 0; i < 3; ++i) det.on_response("b", 500, 0.01, 0.5 + 0.1 * i);
  EXPECT_EQ(det.ejection_allowance(), 1u);
  EXPECT_EQ(det.ejected_count(), 1u);  // "b" spared by the guard
  EXPECT_TRUE(det.ejected("a", 1.0));
  EXPECT_FALSE(det.ejected("b", 1.0));
}

TEST(OutlierDetector, SuccessRateEjectsTheStatisticalOutlier) {
  OutlierConfig cfg = detector_config();
  cfg.consecutive_5xx = 0;  // isolate the success-rate path
  cfg.success_rate_min_hosts = 3;
  cfg.success_rate_request_volume = 8;
  cfg.success_rate_stdev_factor = 1.0;
  OutlierDetector det(cfg);
  // Interval [0, 10): a and b perfect, c only half-healthy (gray node).
  for (int i = 0; i < 10; ++i) {
    const double t = 0.1 + 0.9 * i;
    det.on_response("a", 200, 0.01, t);
    det.on_response("b", 200, 0.01, t);
    det.on_response("c", i % 2 == 0 ? 500 : 200, 0.01, t);
  }
  EXPECT_FALSE(det.ejected("c", 9.9));  // window still open
  // First sample of the next interval closes the window and evaluates.
  det.on_response("a", 200, 0.01, 10.5);
  EXPECT_TRUE(det.ejected("c", 10.6));
  EXPECT_FALSE(det.ejected("a", 10.6));
  EXPECT_FALSE(det.ejected("b", 10.6));
}

TEST(OutlierDetector, TracksRollingBackendLatency) {
  OutlierDetector det(detector_config());
  for (int i = 0; i < 100; ++i) det.on_response("a", 200, 0.050, 0.05 * i);
  const double p99 = det.backend_latency_p("a", 0.99, 5.0);
  EXPECT_NEAR(p99, 0.050, 0.007);  // log-linear bucket resolution
  EXPECT_EQ(det.backend_latency_p("unknown", 0.99, 5.0), 0.0);
}

TEST(OutlierDetector, RemoveHostForgetsState) {
  OutlierDetector det(detector_config());
  for (int i = 0; i < 3; ++i) det.on_response("a", 500, 0.01, 0.1 * i);
  EXPECT_TRUE(det.ejected("a", 1.0));
  det.remove_host("a");
  EXPECT_EQ(det.host_count(), 0u);
  EXPECT_FALSE(det.ejected("a", 1.0));
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket bucket;
  bucket.configure({/*fill_rate_hz=*/1.0, /*burst=*/2.0}, 0.0);
  EXPECT_TRUE(bucket.enabled());
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0));  // burst exhausted
  EXPECT_FALSE(bucket.try_take(0.5));  // only half a token refilled
  EXPECT_TRUE(bucket.try_take(1.6));
  // Tokens cap at capacity no matter how long the idle gap.
  EXPECT_NEAR(bucket.tokens(100.0), 2.0, 1e-9);
}

// ---- Router integration -------------------------------------------------

/// Warm pods behind the router; the handler fails (500) on pods listed in
/// `failing` and never responds at all on pods in `blackhole` (the
/// one-way-partition shape: the request arrives, the reply never leaves).
class OutlierRoutingTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  KnativeServing serving{kube, cl->node(0)};
  std::map<std::string, int> served;
  std::set<std::string> failing;
  std::set<std::string> blackhole;
  bool fail_all = false;
  std::map<int, int> client_statuses;

  void start_service(const Annotations& annotations) {
    hub.push(container::make_task_image("matmul"));
    KnServiceSpec spec;
    spec.name = "fn";
    spec.container.name = "fn";
    spec.container.image = "matmul:latest";
    spec.container.cpu_limit = 1.0;
    spec.handler = [this](const net::HttpRequest& req, FunctionContext& ctx,
                          net::Responder respond) {
      ++served[ctx.pod_name];
      if (blackhole.contains(ctx.pod_name)) return;  // reply never arrives
      const bool fail = fail_all || failing.contains(ctx.pod_name);
      const double work = std::any_cast<double>(req.body);
      ctx.exec(work, [respond = std::move(respond), fail](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = (!ok || fail) ? 500 : 200;
        respond(std::move(resp));
      });
    };
    spec.annotations = annotations;
    serving.create_service(std::move(spec));
    sim.run_until(30.0);
    ASSERT_EQ(serving.ready_replicas("fn"), annotations.min_scale);
  }

  void invoke(double work = 0.02) {
    net::HttpRequest req;
    req.body = work;
    serving.invoke(cl->node(0).net_id(), "fn", std::move(req),
                   [this](net::HttpResponse resp) {
                     ++client_statuses[resp.status];
                   });
  }

  /// First pod the round-robin cursor serves — the ejection victim.
  std::string designate_victim() {
    invoke();
    sim.run_until(sim.now() + 2.0);
    EXPECT_EQ(served.size(), 1u);
    return served.begin()->first;
  }

  static Annotations warm_three() {
    Annotations a;
    a.min_scale = 3;
    a.max_scale = 3;
    a.container_concurrency = 0;
    return a;
  }
};

TEST_F(OutlierRoutingTest, ConsecutiveFailuresSteerTrafficAway) {
  Annotations a = warm_three();
  a.outlier.enabled = true;
  a.outlier.consecutive_5xx = 3;
  a.outlier.base_ejection_s = 1000;  // stays out for the whole test
  start_service(a);
  const std::string victim = designate_victim();
  failing.insert(victim);
  for (int i = 0; i < 18; ++i) {
    invoke();
    sim.run_until(sim.now() + 0.5);
  }
  // The victim absorbed exactly its consecutive_5xx budget; every later
  // request was steered to the two healthy pods.
  EXPECT_EQ(served[victim], 1 + 3);
  EXPECT_EQ(serving.ejections("fn"), 1u);
  ASSERT_EQ(serving.ejected_backends("fn").size(), 1u);
  EXPECT_EQ(serving.ejected_backends("fn")[0], victim);
  EXPECT_EQ(client_statuses[500], 3);  // plain 500s are not retryable
  EXPECT_EQ(client_statuses[200], 1 + 15);
  EXPECT_GT(serving.outlier_guarded_picks(), 0u);
  EXPECT_EQ(serving.outlier_misrouted(), 0u);
  const auto snap = serving.outlier_snapshot("fn");
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.hosts, 3u);
  EXPECT_EQ(snap.ejected, 1u);
}

TEST_F(OutlierRoutingTest, RecoveredBackendIsReadmittedAfterTheWindow) {
  Annotations a = warm_three();
  a.outlier.enabled = true;
  a.outlier.consecutive_5xx = 3;
  a.outlier.base_ejection_s = 20;
  start_service(a);
  const std::string victim = designate_victim();
  failing.insert(victim);
  for (int i = 0; i < 9; ++i) {
    invoke();
    sim.run_until(sim.now() + 0.5);
  }
  ASSERT_EQ(serving.ejections("fn"), 1u);
  failing.erase(victim);  // the gray node recovers while ejected
  sim.run_until(sim.now() + 25.0);
  const int before = served[victim];
  for (int i = 0; i < 9; ++i) {
    invoke();
    sim.run_until(sim.now() + 0.5);
  }
  EXPECT_GT(served[victim], before);  // probation probe + normal rotation
  EXPECT_EQ(serving.readmissions("fn"), 1u);
  EXPECT_EQ(serving.ejections("fn"), 1u);  // probe succeeded: no re-eject
}

TEST_F(OutlierRoutingTest, PanicRoutingServesWhenEveryBackendIsEjected) {
  Annotations a = warm_three();
  a.outlier.enabled = true;
  a.outlier.consecutive_5xx = 2;
  a.outlier.max_ejection_percent = 100;
  a.outlier.base_ejection_s = 1000;
  start_service(a);
  fail_all = true;  // every pod fails -> all ejected -> panic routing
  for (int i = 0; i < 24; ++i) {
    invoke();
    sim.run_until(sim.now() + 0.5);
  }
  EXPECT_EQ(serving.outlier_snapshot("fn").ejected, 3u);
  // Requests keep flowing (and keep failing) instead of blackholing.
  EXPECT_EQ(client_statuses[500], 24);
  EXPECT_EQ(serving.outlier_misrouted(), 0u);  // panic picks don't count
}

TEST_F(OutlierRoutingTest, RouteTimeoutCatchesSilentBackendAndRetries) {
  Annotations a = warm_three();
  a.outlier.enabled = true;
  a.outlier.consecutive_gateway = 1;  // one unresponsive attempt ejects
  a.outlier.base_ejection_s = 1000;
  a.route_timeout_s = 2.0;  // router per-attempt deadline
  start_service(a);
  const std::string victim = designate_victim();
  blackhole.insert(victim);  // request lands, reply never comes back
  for (int i = 0; i < 6; ++i) {
    invoke();
    sim.run_until(sim.now() + 4.0);
  }
  // The one request that hit the blackhole cost one router deadline, was
  // retried against a healthy pod, and the victim got ejected — every
  // client still saw 200.
  EXPECT_EQ(client_statuses[200], 1 + 6);
  EXPECT_EQ(served[victim], 1 + 1);
  EXPECT_EQ(serving.ejections("fn"), 1u);
  EXPECT_EQ(serving.route_failures("fn").unresponsive, 1u);
  EXPECT_GE(serving.route_retries("fn"), 1u);
}

TEST_F(OutlierRoutingTest, AdmissionBucketSheds429sUnderBurst) {
  Annotations a;
  a.min_scale = 1;
  a.max_scale = 1;
  a.container_concurrency = 1;
  a.admission.fill_rate_hz = 0.5;
  a.admission.burst = 2;
  start_service(a);
  for (int i = 0; i < 10; ++i) invoke(/*work=*/0.01);  // one burst
  sim.run_until(sim.now() + 30.0);
  // The burst capacity passes; the rest exhaust their jittered retries
  // and get fast 429s instead of piling into the pod queue.
  EXPECT_GT(client_statuses[429], 0);
  EXPECT_GT(client_statuses[200], 0);
  EXPECT_EQ(client_statuses[429] + client_statuses[200], 10);
  EXPECT_GT(serving.admission_rejections("fn"), 0u);
  EXPECT_EQ(serving.route_failures("fn").rejected,
            serving.admission_rejections("fn"));
  // Rejections never entered a pod queue: depth stays bounded by the
  // admitted trickle, not the burst.
  EXPECT_LE(serving.peak_backend_queue("fn"), 4u);
}

TEST_F(OutlierRoutingTest, ReasonTagsAndPerRevisionRetries) {
  Annotations a;
  a.min_scale = 1;
  a.max_scale = 1;
  a.container_concurrency = 1;
  a.request_timeout_s = 1.0;  // queue-proxy deadline
  a.outlier.enabled = true;   // wires the per-(revision, pod) stats sink
  start_service(a);
  net::HttpRequest req;
  req.body = 50.0;  // far beyond the deadline
  int status = 0;
  std::string reason;
  serving.invoke(cl->node(0).net_id(), "fn", std::move(req),
                 [&](net::HttpResponse resp) {
                   status = resp.status;
                   auto it = resp.headers.find(net::kReasonHeader);
                   if (it != resp.headers.end()) reason = it->second;
                 });
  sim.run_until(sim.now() + 20.0);
  EXPECT_EQ(status, net::kStatusGatewayTimeout);
  EXPECT_EQ(reason, "timeout");  // machine-readable, not just the status
  const auto failures = serving.route_failures("fn");
  EXPECT_EQ(failures.timeout, 3u);  // every attempt hit the deadline
  EXPECT_EQ(failures.backend_down, 0u);
  EXPECT_EQ(failures.unresponsive, 0u);
  // The per-revision split accounts for every service-level retry.
  EXPECT_GT(serving.route_retries("fn"), 0u);
  EXPECT_EQ(serving.route_retries_for_revision(
                "fn", serving.active_revision("fn")),
            serving.route_retries("fn"));
  EXPECT_EQ(serving.route_retries_for_revision("fn", "no-such-rev"), 0u);
  // The queue-proxy recorded latency + outcome per (revision, pod).
  EXPECT_GT(serving.stats().histogram_count(), 0u);
  std::uint64_t outcomes = 0;
  serving.stats().each_counter(
      [&](std::uint32_t, std::uint32_t, std::uint64_t v) { outcomes += v; });
  EXPECT_GE(outcomes, 3u);
}

TEST_F(OutlierRoutingTest, DisabledFeaturesCostNothing) {
  start_service(warm_three());
  for (int i = 0; i < 6; ++i) {
    invoke();
    sim.run_until(sim.now() + 0.5);
  }
  EXPECT_EQ(client_statuses[200], 6);
  EXPECT_EQ(serving.outlier_guarded_picks(), 0u);
  EXPECT_EQ(serving.stats().histogram_count(), 0u);
  EXPECT_EQ(serving.stats().counter_count(), 0u);
  EXPECT_FALSE(serving.outlier_snapshot("fn").enabled);
}

}  // namespace
}  // namespace sf::knative
