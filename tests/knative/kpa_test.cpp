#include "knative/kpa.hpp"

#include <gtest/gtest.h>

namespace sf::knative {
namespace {

KpaScaler::Config config(double target = 1.0, int min_scale = 0,
                         int max_scale = 0) {
  KpaScaler::Config c;
  c.target_concurrency = target;
  c.min_scale = min_scale;
  c.max_scale = max_scale;
  return c;
}

TEST(Kpa, DesiredTracksConcurrencyOverTarget) {
  KpaScaler kpa(config(1.0));
  const auto d = kpa.observe(0.0, 3.0, 1);
  EXPECT_EQ(d.desired, 3);
}

TEST(Kpa, TargetConcurrencyDividesLoad) {
  KpaScaler kpa(config(4.0));
  EXPECT_EQ(kpa.observe(0.0, 8.0, 1).desired, 2);
  EXPECT_EQ(kpa.observe(2.0, 9.0, 2).desired, 3);  // ceil(8.5/4)
}

TEST(Kpa, MinScaleFloor) {
  KpaScaler kpa(config(1.0, /*min=*/2));
  EXPECT_EQ(kpa.observe(0.0, 0.0, 2).desired, 2);
  // Load averaged over the window {0, 10} → 5 pods, floored at min 2.
  EXPECT_EQ(kpa.observe(2.0, 10.0, 2).desired, 5);
}

TEST(Kpa, MaxScaleCeiling) {
  KpaScaler kpa(config(1.0, 0, /*max=*/4));
  EXPECT_EQ(kpa.observe(0.0, 100.0, 1).desired, 4);
}

TEST(Kpa, ScaleFromZeroTarget) {
  EXPECT_EQ(KpaScaler(config(1.0, 0)).scale_from_zero_target(), 1);
  EXPECT_EQ(KpaScaler(config(1.0, 3)).scale_from_zero_target(), 3);
}

TEST(Kpa, StableWindowSmoothsSpikes) {
  KpaScaler kpa(config(1.0));
  // Sustained load 1, one spike to 3 (below the panic threshold of
  // 2×capacity=4 in the panic window... 3 < 4 at capacity 2).
  for (double t = 0; t < 58; t += 2) kpa.observe(t, 1.0, 1);
  const auto d = kpa.observe(58.0, 3.0, 2);
  // Average ≈ (29×1 + 3)/30 ≈ 1.07 → desired 2 at most, not 3.
  EXPECT_LE(d.desired, 2);
}

TEST(Kpa, PanicScalesUpImmediately) {
  KpaScaler kpa(config(1.0));
  kpa.observe(0.0, 1.0, 1);
  // Burst of 10 concurrent on 1 pod: panic window avg jumps.
  const auto d = kpa.observe(2.0, 10.0, 1);
  EXPECT_TRUE(d.panicking);
  EXPECT_GE(d.desired, 5);  // panic-window average (1+10)/2 → 6
}

TEST(Kpa, PanicNeverScalesDown) {
  KpaScaler kpa(config(1.0));
  kpa.observe(0.0, 10.0, 1);  // enter panic, desired 10
  const auto d1 = kpa.observe(2.0, 10.0, 10);
  EXPECT_TRUE(d1.panicking);
  const int high = d1.desired;
  // Load vanishes but we are still inside the panic stabilisation window.
  const auto d2 = kpa.observe(4.0, 0.0, high);
  EXPECT_TRUE(d2.panicking);
  EXPECT_GE(d2.desired, high);
}

TEST(Kpa, PanicExitsAfterStableWindow) {
  KpaScaler kpa(config(1.0));
  kpa.observe(0.0, 10.0, 1);
  auto d = kpa.observe(2.0, 10.0, 10);
  EXPECT_TRUE(d.panicking);
  // One quiet stable-window later, panic ends.
  for (double t = 4.0; t <= 70.0; t += 2) d = kpa.observe(t, 0.0, d.desired);
  EXPECT_FALSE(d.panicking);
}

TEST(Kpa, ScaleToZeroWaitsForGrace) {
  KpaScaler kpa(config(1.0));
  kpa.observe(0.0, 1.0, 1);
  // Load gone at t=2; grace is 30 s from last positive sample.
  auto d = kpa.observe(2.0, 0.0, 1);
  // Still inside stable window: average > 0 → desired 1 anyway.
  EXPECT_EQ(d.desired, 1);
  // Far past window + grace: zero.
  for (double t = 4.0; t <= 96.0; t += 2) d = kpa.observe(t, 0.0, 1);
  EXPECT_EQ(d.desired, 0);
}

TEST(Kpa, MinScaleServicesNeverReachZero) {
  KpaScaler kpa(config(1.0, /*min=*/2));
  KpaScaler::Decision d{};
  for (double t = 0.0; t <= 200.0; t += 2) d = kpa.observe(t, 0.0, 2);
  EXPECT_EQ(d.desired, 2);
  EXPECT_FALSE(d.work_pending);  // quiescent → serving can pause its loop
}

TEST(Kpa, WorkPendingWhileTrafficFlows) {
  KpaScaler kpa(config(1.0));
  EXPECT_TRUE(kpa.observe(0.0, 1.0, 1).work_pending);
}

TEST(Kpa, QuiescenceAfterScaleToZero) {
  KpaScaler kpa(config(1.0));
  KpaScaler::Decision d{};
  int current = 1;
  for (double t = 0.0; t <= 200.0; t += 2) {
    d = kpa.observe(t, 0.0, current);
    current = d.desired;
  }
  EXPECT_EQ(d.desired, 0);
  EXPECT_FALSE(d.work_pending);
}

// Parameterized sweep: steady concurrency c with target T settles at
// ceil(c/T) replicas.
struct SteadyCase {
  double concurrency;
  double target;
  int expected;
};

class KpaSteadySweep : public ::testing::TestWithParam<SteadyCase> {};

TEST_P(KpaSteadySweep, SettlesAtCeilRatio) {
  const auto [conc, target, expected] = GetParam();
  KpaScaler kpa(config(target));
  KpaScaler::Decision d{};
  int current = 1;
  for (double t = 0; t <= 120; t += 2) {
    d = kpa.observe(t, conc, current);
    current = d.desired;
  }
  EXPECT_EQ(d.desired, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KpaSteadySweep,
    ::testing::Values(SteadyCase{1, 1, 1}, SteadyCase{2, 1, 2},
                      SteadyCase{10, 1, 10}, SteadyCase{10, 4, 3},
                      SteadyCase{7, 2, 4}, SteadyCase{0.5, 1, 1},
                      SteadyCase{16, 8, 2}));

}  // namespace
}  // namespace sf::knative
