// Canary traffic splitting: a held rollout routes a configured fraction
// of requests to the new revision until promoted or rolled back.

#include <gtest/gtest.h>

#include "container/image.hpp"
#include "knative/serving.hpp"
#include "sim/simulation.hpp"

namespace sf::knative {
namespace {

class CanaryTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  KnativeServing serving{kube, cl->node(0)};
  int v1_hits = 0;
  int v2_hits = 0;

  void SetUp() override {
    hub.push(container::make_task_image("matmul"));
    serving.create_service(spec(&v1_hits));
    sim.run_until(30.0);
    ASSERT_EQ(serving.ready_replicas("fn"), 1);
  }

  KnServiceSpec spec(int* counter) {
    KnServiceSpec s;
    s.name = "fn";
    s.container.name = "fn";
    s.container.image = "matmul:latest";
    s.container.cpu_limit = 1.0;
    s.handler = [counter](const net::HttpRequest&, FunctionContext& ctx,
                          net::Responder respond) {
      ++*counter;
      ctx.exec(0.05, [respond = std::move(respond)](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        respond(std::move(resp));
      });
    };
    s.annotations.min_scale = 1;
    return s;
  }

  void drive_requests(int n) {
    for (int i = 0; i < n; ++i) {
      serving.invoke(cl->node(0).net_id(), "fn", {},
                     [](net::HttpResponse resp) { EXPECT_TRUE(resp.ok()); });
      sim.run_until(sim.now() + 1.0);
    }
  }
};

TEST_F(CanaryTest, SplitsTrafficRoughlyByFraction) {
  serving.update_service_canary(spec(&v2_hits), 0.3);
  sim.run_until(sim.now() + 30.0);  // canary pod warms
  EXPECT_DOUBLE_EQ(serving.canary_fraction("fn"), 0.3);
  EXPECT_EQ(serving.active_revision("fn"), "fn-00001");  // still v1

  drive_requests(100);
  EXPECT_EQ(v1_hits + v2_hits, 100);
  EXPECT_GT(v2_hits, 10);  // ~30 expected
  EXPECT_LT(v2_hits, 55);
  EXPECT_GT(v1_hits, 45);
}

TEST_F(CanaryTest, PromoteSwitchesAllTraffic) {
  serving.update_service_canary(spec(&v2_hits), 0.2);
  sim.run_until(sim.now() + 30.0);
  serving.promote_canary("fn");
  sim.run_until(sim.now() + 30.0);
  EXPECT_EQ(serving.active_revision("fn"), "fn-00002");
  EXPECT_DOUBLE_EQ(serving.canary_fraction("fn"), 0.0);
  const int before = v2_hits;
  drive_requests(10);
  EXPECT_EQ(v2_hits, before + 10);
  // Old revision's pods are gone.
  for (const auto* pod : kube.api().list_pods()) {
    EXPECT_EQ(pod->labels.at("serving.knative.dev/revision"), "fn-00002");
  }
}

TEST_F(CanaryTest, RollbackKeepsOldRevision) {
  serving.update_service_canary(spec(&v2_hits), 0.5);
  sim.run_until(sim.now() + 30.0);
  serving.rollback_canary("fn");
  sim.run_until(sim.now() + 30.0);
  EXPECT_EQ(serving.active_revision("fn"), "fn-00001");
  EXPECT_DOUBLE_EQ(serving.canary_fraction("fn"), 0.0);
  drive_requests(10);
  EXPECT_EQ(v2_hits, 0);
  EXPECT_GE(v1_hits, 10);
  // A later full rollout still works; the rolled-back revision number is
  // burned, so the next one is fn-00003.
  serving.update_service(spec(&v2_hits));
  sim.run_until(sim.now() + 60.0);
  EXPECT_EQ(serving.active_revision("fn"), "fn-00003");
}

TEST_F(CanaryTest, ZeroFractionServesOnlyOld) {
  serving.update_service_canary(spec(&v2_hits), 0.0);
  sim.run_until(sim.now() + 30.0);
  drive_requests(20);
  EXPECT_EQ(v2_hits, 0);
  EXPECT_EQ(v1_hits, 20);
}

TEST_F(CanaryTest, InvalidFractionThrows) {
  EXPECT_THROW(serving.update_service_canary(spec(&v2_hits), 1.5),
               std::invalid_argument);
  EXPECT_THROW(serving.update_service_canary(spec(&v2_hits), -0.1),
               std::invalid_argument);
}

TEST_F(CanaryTest, PromoteWithoutCanaryThrows) {
  EXPECT_THROW(serving.promote_canary("fn"), std::logic_error);
  EXPECT_THROW(serving.rollback_canary("fn"), std::logic_error);
  EXPECT_THROW(serving.promote_canary("ghost"), std::logic_error);
}

}  // namespace
}  // namespace sf::knative
