#include "knative/queue_proxy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace sf::knative {
namespace {

/// QueueProxy in isolation: a handler that responds after a simulated
/// delay stands in for the user container.
class QueueProxyTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  net::FlowNetwork net{sim};
  net::HttpFabric http{sim, net};
  net::NodeId client = net.add_node(1e9, 0.0001);
  net::NodeId pod_node = net.add_node(1e9, 0.0001);

  FunctionContext context() {
    FunctionContext ctx;
    ctx.sim = &sim;
    ctx.node = pod_node;
    ctx.pod_name = "pod-0";
    ctx.exec = [this](double work, std::function<void(bool)> done) {
      sim.call_in(work, [done = std::move(done)] { done(true); });
    };
    return ctx;
  }

  static FunctionHandler delay_handler() {
    return [](const net::HttpRequest& req, FunctionContext& ctx,
              net::Responder respond) {
      const double work = std::any_cast<double>(req.body);
      ctx.exec(work, [respond = std::move(respond)](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        respond(std::move(resp));
      });
    };
  }

  void send(double work, std::function<void(net::HttpResponse)> cb) {
    net::HttpRequest req;
    req.body = work;
    http.request(client, pod_node, 10001, std::move(req), std::move(cb));
  }
};

TEST_F(QueueProxyTest, ServesSingleRequest) {
  QueueProxy qp(sim, http, context(), delay_handler(), 1);
  qp.install(10001);
  bool ok = false;
  send(0.5, [&](net::HttpResponse resp) { ok = resp.ok(); });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(qp.served(), 1u);
  EXPECT_EQ(qp.executing(), 0);
}

TEST_F(QueueProxyTest, ConcurrencyLimitQueuesExcess) {
  QueueProxy qp(sim, http, context(), delay_handler(), 2);
  qp.install(10001);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    send(1.0, [&](net::HttpResponse) { done.push_back(sim.now()); });
  }
  sim.run_until(0.5);
  EXPECT_EQ(qp.executing(), 2);
  EXPECT_EQ(qp.queued(), 2u);
  EXPECT_DOUBLE_EQ(qp.concurrency(), 4.0);
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  // Two waves: ~1 s and ~2 s.
  EXPECT_NEAR(done[1], 1.0, 0.01);
  EXPECT_NEAR(done[3], 2.0, 0.01);
}

TEST_F(QueueProxyTest, UnlimitedConcurrencyNeverQueues) {
  QueueProxy qp(sim, http, context(), delay_handler(), 0);
  qp.install(10001);
  for (int i = 0; i < 8; ++i) {
    send(1.0, [](net::HttpResponse) {});
  }
  sim.run_until(0.5);
  EXPECT_EQ(qp.executing(), 8);
  EXPECT_EQ(qp.queued(), 0u);
  sim.run();
  EXPECT_EQ(qp.served(), 8u);
}

TEST_F(QueueProxyTest, DrainFinishesInFlightThenSignals) {
  QueueProxy qp(sim, http, context(), delay_handler(), 1);
  qp.install(10001);
  int completed = 0;
  send(1.0, [&](net::HttpResponse resp) { completed += resp.ok(); });
  send(1.0, [&](net::HttpResponse resp) { completed += resp.ok(); });
  double drained_at = -1;
  sim.call_in(0.5, [&] {
    qp.drain([&] { drained_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(completed, 2);          // queued request still served
  EXPECT_NEAR(drained_at, 2.0, 0.01);  // after both finish
  EXPECT_TRUE(qp.draining());
}

TEST_F(QueueProxyTest, DrainWithNoWorkSignalsImmediately) {
  QueueProxy qp(sim, http, context(), delay_handler(), 1);
  qp.install(10001);
  double drained_at = -1;
  qp.drain([&] { drained_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(drained_at, 0.0);
}

TEST_F(QueueProxyTest, RequestsDuringDrainAreRejected) {
  QueueProxy qp(sim, http, context(), delay_handler(), 1);
  qp.install(10001);
  qp.drain([] {});
  int status = 0;
  send(0.1, [&](net::HttpResponse resp) { status = resp.status; });
  sim.run();
  // Listener closed → connection refused at the fabric level.
  EXPECT_EQ(status, net::kStatusConnectionRefused);
}

TEST_F(QueueProxyTest, DestructorUnbindsListener) {
  {
    QueueProxy qp(sim, http, context(), delay_handler(), 1);
    qp.install(10001);
    EXPECT_TRUE(http.is_listening(pod_node, 10001));
  }
  EXPECT_FALSE(http.is_listening(pod_node, 10001));
}

TEST_F(QueueProxyTest, FailedExecPropagates500) {
  FunctionContext ctx = context();
  ctx.exec = [this](double, std::function<void(bool)> done) {
    sim.call_in(0.1, [done = std::move(done)] { done(false); });
  };
  QueueProxy qp(sim, http, std::move(ctx), delay_handler(), 1);
  qp.install(10001);
  int status = 0;
  send(0.1, [&](net::HttpResponse resp) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, 500);
  EXPECT_EQ(qp.served(), 1u);  // still counted as handled
}

}  // namespace
}  // namespace sf::knative
