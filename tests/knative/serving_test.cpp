#include "knative/serving.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "container/image.hpp"
#include "sim/simulation.hpp"

namespace sf::knative {
namespace {

/// Shared fixture: paper testbed, node0 = gateway/registry, nodes 1-3
/// Knative workers, one "matmul" function whose handler burns `work`
/// core-seconds from the request body and echoes a payload back.
class ServingTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  KnativeServing serving{kube, cl->node(0)};
  net::NodeId client = 0;

  void SetUp() override {
    hub.push(container::make_task_image("matmul"));
    client = cl->node(0).net_id();
  }

  static FunctionHandler compute_handler() {
    return [](const net::HttpRequest& req, FunctionContext& ctx,
              net::Responder respond) {
      const double work =
          req.body.has_value() ? std::any_cast<double>(req.body) : 0.1;
      ctx.exec(work, [respond = std::move(respond),
                      bytes = req.body_bytes](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        resp.body_bytes = bytes;  // echo: output matrix ≈ input matrix
        respond(std::move(resp));
      });
    };
  }

  KnServiceSpec spec(const std::string& name, Annotations a = {}) {
    KnServiceSpec s;
    s.name = name;
    s.container.name = name;
    s.container.image = "matmul:latest";
    s.container.memory_bytes = 512e6;
    s.container.boot_s = 0.6;
    s.container.cpu_limit = 1.0;  // single-threaded Python task
    s.handler = compute_handler();
    s.annotations = a;
    return s;
  }

  double invoke_and_wait(const std::string& service, double work) {
    double done_at = -1;
    net::HttpRequest req;
    req.body = work;
    req.body_bytes = 490000;
    serving.invoke(client, service, std::move(req),
                   [&](net::HttpResponse resp) {
                     EXPECT_TRUE(resp.ok());
                     done_at = sim.now();
                   });
    // Step until the response arrives (bounded), so the clock stops there
    // and the service cannot idle back to zero between calls.
    const double deadline = sim.now() + 600.0;
    while (done_at < 0 && sim.has_pending_events() &&
           sim.next_event_time() <= deadline) {
      sim.step();
    }
    EXPECT_GE(done_at, 0) << "invocation never completed";
    return done_at;
  }
};

TEST_F(ServingTest, ColdStartThenWarmReuse) {
  Annotations a;
  a.initial_scale = 0;  // deferred: nothing runs until first invocation
  serving.create_service(spec("matmul", a));
  sim.run_until(1.0);
  EXPECT_EQ(serving.ready_replicas("matmul"), 0);

  const double t0 = sim.now();
  const double first_done = invoke_and_wait("matmul", 0.1);
  const double cold = first_done - t0;
  // Cold start: image pull + create + start + boot dominates.
  EXPECT_GT(cold, 1.0);
  EXPECT_EQ(serving.cold_start_requests("matmul"), 1u);

  const double t1 = sim.now();
  const double second_done = invoke_and_wait("matmul", 0.1);
  const double warm = second_done - t1;
  EXPECT_LT(warm, 0.3);  // container reused: work + network only
  EXPECT_EQ(serving.cold_start_requests("matmul"), 1u);  // no new cold start
}

TEST_F(ServingTest, MinScalePrestagesPods) {
  Annotations a;
  a.min_scale = 2;
  serving.create_service(spec("matmul", a));
  sim.run_until(30.0);
  EXPECT_EQ(serving.ready_replicas("matmul"), 2);
  // Image was pulled onto the pods' nodes ahead of any invocation.
  const double t0 = sim.now();
  invoke_and_wait("matmul", 0.1);
  EXPECT_LT(sim.now() - t0, 0.3);
  EXPECT_EQ(serving.cold_start_requests("matmul"), 0u);
}

TEST_F(ServingTest, ScaleToZeroAfterIdle) {
  Annotations a;
  a.min_scale = 0;
  a.stable_window_s = 10.0;  // shrink windows to keep the test fast
  a.scale_to_zero_grace_s = 5.0;
  serving.create_service(spec("matmul", a));
  invoke_and_wait("matmul", 0.1);
  EXPECT_GE(serving.ready_replicas("matmul"), 1);
  sim.run_until(sim.now() + 60.0);
  EXPECT_EQ(serving.ready_replicas("matmul"), 0);
  EXPECT_EQ(serving.desired_replicas("matmul"), 0);
  // All containers gone; memory reclaimed.
  for (const auto& name : kube.worker_names()) {
    EXPECT_DOUBLE_EQ(kube.worker(name).node->memory_used(), 0.0);
  }
}

TEST_F(ServingTest, ConcurrentBurstAutoscales) {
  Annotations a;
  a.min_scale = 1;
  a.target_concurrency = 1.0;
  a.container_concurrency = 1;
  serving.create_service(spec("matmul", a));
  sim.run_until(30.0);

  int completed = 0;
  for (int i = 0; i < 12; ++i) {
    net::HttpRequest req;
    req.body = 2.0;  // 2 s of work each
    serving.invoke(client, "matmul", std::move(req),
                   [&](net::HttpResponse resp) {
                     EXPECT_TRUE(resp.ok());
                     ++completed;
                   });
  }
  // Step through the burst, tracking the scale-out peak (the autoscaler
  // returns to min-scale once the burst drains).
  int peak_desired = 0;
  const double deadline = sim.now() + 120.0;
  while (completed < 12 && sim.has_pending_events() &&
         sim.next_event_time() <= deadline) {
    sim.step();
    peak_desired = std::max(peak_desired, serving.desired_replicas("matmul"));
  }
  EXPECT_EQ(completed, 12);
  // The burst must have forced scale-out beyond the single warm pod.
  EXPECT_GT(peak_desired, 1);
}

TEST_F(ServingTest, ContainerConcurrencyOneSerializesPerPod) {
  Annotations a;
  a.min_scale = 1;
  a.max_scale = 1;  // pin to one pod to observe serialization
  a.container_concurrency = 1;
  serving.create_service(spec("matmul", a));
  sim.run_until(30.0);
  const double t0 = sim.now();
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    net::HttpRequest req;
    req.body = 1.0;
    serving.invoke(client, "matmul", std::move(req),
                   [&](net::HttpResponse) { done.push_back(sim.now()); });
  }
  sim.run_until(t0 + 60.0);
  ASSERT_EQ(done.size(), 3u);
  // Strictly serialized: ≈1, 2, 3 s after t0 (plus small network cost).
  EXPECT_NEAR(done[0] - t0, 1.0, 0.1);
  EXPECT_NEAR(done[1] - t0, 2.0, 0.1);
  EXPECT_NEAR(done[2] - t0, 3.0, 0.1);
}

TEST_F(ServingTest, UnlimitedConcurrencySharesContainer) {
  Annotations a;
  a.min_scale = 1;
  a.max_scale = 1;
  a.container_concurrency = 0;  // all requests co-located in one container
  serving.create_service(spec("matmul", a));
  sim.run_until(30.0);
  const double t0 = sim.now();
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    net::HttpRequest req;
    req.body = 1.0;
    serving.invoke(client, "matmul", std::move(req),
                   [&](net::HttpResponse) { done.push_back(sim.now()); });
  }
  sim.run_until(t0 + 60.0);
  ASSERT_EQ(done.size(), 3u);
  // Three single-threaded execs on an 8-core node run in parallel.
  EXPECT_NEAR(done.back() - t0, 1.0, 0.1);
}

TEST_F(ServingTest, UnknownServiceIs404) {
  int status = 0;
  serving.invoke(client, "ghost", {},
                 [&](net::HttpResponse resp) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, 404);
}

TEST_F(ServingTest, MissingHostHeaderIs404) {
  int status = 0;
  cl->http().request(client, serving.gateway_net_id(),
                     KnativeServing::kGatewayPort, {},
                     [&](net::HttpResponse resp) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, 404);
}

TEST_F(ServingTest, DuplicateServiceThrows) {
  serving.create_service(spec("matmul"));
  EXPECT_THROW(serving.create_service(spec("matmul")),
               std::invalid_argument);
}

TEST_F(ServingTest, DeleteServiceTearsDownPods) {
  Annotations a;
  a.min_scale = 2;
  serving.create_service(spec("matmul", a));
  sim.run_until(30.0);
  EXPECT_EQ(serving.ready_replicas("matmul"), 2);
  serving.delete_service("matmul");
  sim.run_until(60.0);
  EXPECT_FALSE(serving.has_service("matmul"));
  EXPECT_TRUE(kube.api().list_pods().empty());
  int status = 0;
  serving.invoke(client, "matmul", {},
                 [&](net::HttpResponse resp) { status = resp.status; });
  sim.run_until(61.0);
  EXPECT_EQ(status, 404);
}

TEST_F(ServingTest, RequestsSpreadRoundRobinAcrossPods) {
  Annotations a;
  a.min_scale = 3;
  a.container_concurrency = 1;
  serving.create_service(spec("matmul", a));
  sim.run_until(30.0);
  ASSERT_EQ(serving.ready_replicas("matmul"), 3);
  const double t0 = sim.now();
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    net::HttpRequest req;
    req.body = 1.0;
    serving.invoke(client, "matmul", std::move(req),
                   [&](net::HttpResponse) { ++completed; });
  }
  sim.run_until(t0 + 30.0);
  EXPECT_EQ(completed, 3);
  // Round-robin lands one request per pod → all finish in ≈1 s.
  EXPECT_LT(sim.now(), t0 + 30.0 + 1e-9);
}

TEST_F(ServingTest, ColdStartLatencyMatchesPaperBallpark) {
  // With the image pre-staged (paper: "containers distributed to
  // workers"), scale-from-zero pays scheduling + create + start + boot.
  kube.seed_image_everywhere(container::make_task_image("matmul"));
  Annotations a;
  a.initial_scale = 0;
  serving.create_service(spec("matmul", a));
  sim.run_until(1.0);
  const double t0 = sim.now();
  const double done = invoke_and_wait("matmul", 0.0);
  const double cold = done - t0;
  // Paper reports 1.48 s; accept the right order of magnitude here (the
  // calibrated figure is asserted in the core-library tests).
  EXPECT_GT(cold, 0.5);
  EXPECT_LT(cold, 3.0);
}

TEST_F(ServingTest, PayloadBytesFlowThroughBothHops) {
  Annotations a;
  a.min_scale = 1;
  serving.create_service(spec("matmul", a));
  sim.run_until(30.0);
  const double bytes_before = cl->network().total_bytes_delivered();
  invoke_and_wait("matmul", 0.0);
  const double delta = cl->network().total_bytes_delivered() - bytes_before;
  // Request payload twice (client→gw, gw→pod) + response twice.
  EXPECT_GE(delta, 4 * 490000.0 - 1.0);
}

}  // namespace
}  // namespace sf::knative
