// Seeded random-walk fuzz over the KPA control law: whatever the traffic
// does, the decisions must respect the configured bounds and converge
// when traffic stops.

#include <gtest/gtest.h>

#include "knative/kpa.hpp"
#include "sim/random.hpp"

namespace sf::knative {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  double target;
  int min_scale;
  int max_scale;
};

class KpaFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(KpaFuzz, DecisionsAlwaysWithinBounds) {
  const auto param = GetParam();
  sim::Rng rng(param.seed);
  KpaScaler::Config config;
  config.target_concurrency = param.target;
  config.min_scale = param.min_scale;
  config.max_scale = param.max_scale;
  KpaScaler kpa(config);

  int current = std::max(1, param.min_scale);
  double load = 0;
  for (double t = 0; t < 600; t += 2) {
    // Random-walk the offered concurrency, with occasional bursts/idles.
    if (rng.chance(0.05)) {
      load = rng.uniform(0, 100);
    } else if (rng.chance(0.1)) {
      load = 0;
    } else {
      load = std::max(0.0, load + rng.uniform(-3, 3));
    }
    const auto decision = kpa.observe(t, load, current);
    EXPECT_GE(decision.desired, param.min_scale);
    EXPECT_GE(decision.desired, 0);
    if (param.max_scale > 0) {
      EXPECT_LE(decision.desired, param.max_scale);
    }
    current = decision.desired;
  }
  // Traffic stops: the scaler must reach its floor and go quiescent.
  KpaScaler::Decision final_decision{};
  for (double t = 600; t < 800; t += 2) {
    final_decision = kpa.observe(t, 0, current);
    current = final_decision.desired;
  }
  EXPECT_EQ(final_decision.desired, param.min_scale);
  EXPECT_FALSE(final_decision.work_pending);
  EXPECT_FALSE(final_decision.panicking);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KpaFuzz,
    ::testing::Values(FuzzCase{1, 1.0, 0, 0}, FuzzCase{2, 1.0, 2, 0},
                      FuzzCase{3, 4.0, 0, 8}, FuzzCase{4, 0.5, 1, 4},
                      FuzzCase{5, 2.0, 3, 3}, FuzzCase{6, 8.0, 0, 0}));

}  // namespace
}  // namespace sf::knative
