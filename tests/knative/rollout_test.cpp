#include <gtest/gtest.h>

#include "container/image.hpp"
#include "knative/serving.hpp"
#include "sim/simulation.hpp"

namespace sf::knative {
namespace {

/// Blue/green revision rollouts: a new spec brings up revision N+1, warms
/// it, atomically switches traffic, and drains revision N.
class RolloutTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  KnativeServing serving{kube, cl->node(0)};

  void SetUp() override {
    hub.push(container::make_task_image("matmul"));
    hub.push(container::make_task_image("matmul-v2"));
    serving.create_service(spec("v1-response", "matmul:latest"));
    sim.run_until(30.0);
    ASSERT_EQ(serving.ready_replicas("fn"), 1);
  }

  KnServiceSpec spec(const std::string& marker, const std::string& image) {
    KnServiceSpec s;
    s.name = "fn";
    s.container.name = "fn";
    s.container.image = image;
    s.container.cpu_limit = 1.0;
    s.container.boot_s = 0.5;
    s.handler = [marker](const net::HttpRequest&, FunctionContext& ctx,
                         net::Responder respond) {
      ctx.exec(0.1, [marker, respond = std::move(respond)](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        resp.body = marker;
        respond(std::move(resp));
      });
    };
    s.annotations.min_scale = 1;
    return s;
  }

  std::string invoke_and_wait() {
    std::string marker;
    bool done = false;
    serving.invoke(cl->node(0).net_id(), "fn", {},
                   [&](net::HttpResponse resp) {
                     EXPECT_TRUE(resp.ok());
                     if (resp.body.has_value()) {
                       marker = std::any_cast<std::string>(resp.body);
                     }
                     done = true;
                   });
    while (!done && sim.has_pending_events()) sim.step();
    return marker;
  }
};

TEST_F(RolloutTest, InitialRevisionServes) {
  EXPECT_EQ(serving.active_revision("fn"), "fn-00001");
  EXPECT_EQ(invoke_and_wait(), "v1-response");
}

TEST_F(RolloutTest, UpdateSwitchesTrafficToNewRevision) {
  serving.update_service(spec("v2-response", "matmul-v2:latest"));
  // Until the new revision is ready, v1 keeps serving.
  EXPECT_EQ(invoke_and_wait(), "v1-response");
  sim.run_until(sim.now() + 60.0);
  EXPECT_EQ(serving.active_revision("fn"), "fn-00002");
  EXPECT_EQ(invoke_and_wait(), "v2-response");
  EXPECT_EQ(serving.ready_replicas("fn"), 1);
}

TEST_F(RolloutTest, OldRevisionPodsAreTornDown) {
  serving.update_service(spec("v2-response", "matmul-v2:latest"));
  sim.run_until(sim.now() + 60.0);
  // Only the new revision's pod remains in the cluster.
  const auto pods = kube.api().list_pods();
  ASSERT_EQ(pods.size(), 1u);
  EXPECT_EQ(pods[0]->labels.at("serving.knative.dev/revision"), "fn-00002");
}

TEST_F(RolloutTest, NoRequestsDroppedAcrossRollout) {
  int ok = 0;
  int total = 0;
  // A steady trickle of requests while the rollout happens mid-stream.
  for (int i = 0; i < 20; ++i) {
    ++total;
    serving.invoke(cl->node(0).net_id(), "fn", {},
                   [&](net::HttpResponse resp) { ok += resp.ok() ? 1 : 0; });
    if (i == 5) {
      serving.update_service(spec("v2-response", "matmul-v2:latest"));
    }
    sim.run_until(sim.now() + 2.0);
  }
  sim.run_until(sim.now() + 60.0);
  EXPECT_EQ(ok, total);
  EXPECT_EQ(serving.active_revision("fn"), "fn-00002");
}

TEST_F(RolloutTest, ConcurrentRolloutRejected) {
  serving.update_service(spec("v2", "matmul-v2:latest"));
  EXPECT_THROW(serving.update_service(spec("v3", "matmul:latest")),
               std::logic_error);
}

TEST_F(RolloutTest, UpdateUnknownServiceThrows) {
  auto s = spec("x", "matmul:latest");
  s.name = "ghost";
  EXPECT_THROW(serving.update_service(std::move(s)),
               std::invalid_argument);
}

TEST_F(RolloutTest, DeleteDuringRolloutCleansBothRevisions) {
  serving.update_service(spec("v2", "matmul-v2:latest"));
  serving.delete_service("fn");
  sim.run_until(sim.now() + 60.0);
  EXPECT_FALSE(serving.has_service("fn"));
  EXPECT_TRUE(kube.api().list_pods().empty());
}

TEST_F(RolloutTest, GenerationCountsUp) {
  serving.update_service(spec("v2", "matmul-v2:latest"));
  sim.run_until(sim.now() + 60.0);
  serving.update_service(spec("v3", "matmul:latest"));
  sim.run_until(sim.now() + 60.0);
  EXPECT_EQ(serving.active_revision("fn"), "fn-00003");
  EXPECT_EQ(invoke_and_wait(), "v3");
}

}  // namespace
}  // namespace sf::knative
