#include "metrics/regression.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace sf::metrics {
namespace {

TEST(Regression, PerfectLine) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  const std::array<double, 4> ys{3, 5, 7, 9};  // y = 2x + 1
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Regression, NoisyLineSlopeClose) {
  const std::array<double, 5> xs{0, 1, 2, 3, 4};
  const std::array<double, 5> ys{0.1, 0.9, 2.1, 2.9, 4.1};
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 1.0, 0.05);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Regression, ConstantYsZeroSlope) {
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 3> ys{5, 5, 5};
  const LinearFit f = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 5.0);
  EXPECT_DOUBLE_EQ(f.r2, 1.0);
}

TEST(Regression, DegenerateInputsReturnZeroFit) {
  EXPECT_DOUBLE_EQ(fit_line({}, {}).slope, 0.0);
  const std::array<double, 1> one{1};
  EXPECT_DOUBLE_EQ(fit_line(one, one).slope, 0.0);
  const std::array<double, 2> same_x{2, 2};
  const std::array<double, 2> ys{1, 3};
  EXPECT_DOUBLE_EQ(fit_line(same_x, ys).slope, 0.0);
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 2> mismatched{1, 2};
  EXPECT_DOUBLE_EQ(fit_line(xs, mismatched).slope, 0.0);
}

TEST(Regression, NegativeSlope) {
  const std::array<double, 3> xs{0, 1, 2};
  const std::array<double, 3> ys{4, 2, 0};
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, -2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 4.0, 1e-12);
}

}  // namespace
}  // namespace sf::metrics
