#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace sf::metrics {
namespace {

TEST(Stats, EmptyYieldsZeroes) {
  const SummaryStats s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
  EXPECT_DOUBLE_EQ(s.sum, 0);
}

TEST(Stats, SingleValue) {
  const std::array<double, 1> v{5.0};
  const SummaryStats s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, KnownSample) {
  const std::array<double, 4> v{2.0, 4.0, 4.0, 6.0};
  const SummaryStats s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 16.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Stats, NegativeValues) {
  const std::array<double, 3> v{-3.0, 0.0, 3.0};
  const SummaryStats s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Percentile, MedianOfOdd) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100), 9.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25), 2.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7}, 99), 7.0);
}

}  // namespace
}  // namespace sf::metrics
