#include "metrics/ternary.hpp"

#include <gtest/gtest.h>

namespace sf::metrics {
namespace {

TEST(Ternary, CornersMapToTriangleVertices) {
  const auto n = to_ternary_xy({1, 0, 0});
  EXPECT_DOUBLE_EQ(n.x, 0.0);
  EXPECT_DOUBLE_EQ(n.y, 0.0);
  const auto c = to_ternary_xy({0, 1, 0});
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
  const auto s = to_ternary_xy({0, 0, 1});
  EXPECT_DOUBLE_EQ(s.x, 0.5);
  EXPECT_NEAR(s.y, 0.8660254, 1e-6);
}

TEST(Ternary, CenterIsCentroid) {
  const auto p = to_ternary_xy({1.0 / 3, 1.0 / 3, 1.0 / 3});
  EXPECT_NEAR(p.x, 0.5, 1e-9);
  EXPECT_NEAR(p.y, 0.2886751, 1e-6);
}

TEST(Ternary, InvalidMixThrows) {
  EXPECT_THROW(to_ternary_xy({0.5, 0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(to_ternary_xy({-0.1, 0.6, 0.5}), std::invalid_argument);
}

TEST(Ternary, IsolationScoreOrdersModes) {
  EXPECT_DOUBLE_EQ(isolation_score({1, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(isolation_score({0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(isolation_score({0, 0, 1}), 0.5);
  // Half container / half native, as in Figure 6's fourth bar.
  EXPECT_DOUBLE_EQ(isolation_score({0.5, 0.5, 0}), 0.5);
}

}  // namespace
}  // namespace sf::metrics
