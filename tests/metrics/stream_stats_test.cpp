// sf::stats: log-linear bucket math, interpolated percentiles, rolling
// window rotation, flat-store handles — and a direct proof that the hot
// path (record/add through pre-created handles) allocates nothing.

#include "metrics/stream_stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

// Global-new instrumentation for the zero-alloc proof below. Counting is
// process-wide; the test only looks at the *delta* across the hot loop.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace sf::stats {
namespace {

TEST(Histogram, SmallValuesLandInExactBuckets) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::index_of(v), v) << v;  // sub-buckets keep 8..15 exact
  }
}

TEST(Histogram, BucketFloorInvertsIndexOf) {
  for (std::uint64_t v : {0ull, 7ull, 8ull, 100ull, 1000ull, 123456ull,
                          1ull << 20, (1ull << 31) + 5, (1ull << 32) - 1}) {
    const std::size_t idx = Histogram::index_of(v);
    EXPECT_LE(Histogram::bucket_floor(idx), v) << v;
    EXPECT_GT(Histogram::bucket_floor(idx + 1), v) << v;
  }
}

TEST(Histogram, RelativeErrorBoundedBySubBuckets) {
  for (std::uint64_t v = 8; v < (1u << 20); v = v * 5 / 4 + 1) {
    const std::size_t idx = Histogram::index_of(v);
    const double lo = static_cast<double>(Histogram::bucket_floor(idx));
    const double hi = static_cast<double>(Histogram::bucket_floor(idx + 1));
    EXPECT_LE((hi - lo) / lo, 0.1251) << v;  // 1/8 per power-of-two range
  }
}

TEST(Histogram, OverflowValuesAreCaptured) {
  Histogram h;
  h.record(1ull << 40);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 1ull << 40);
  EXPECT_GE(h.percentile(0.99), 1ull << 32);
}

TEST(Histogram, PercentilesInterpolateAndStayMonotonic) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 100);  // 100..100k
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100000u);
  const std::uint64_t p50 = h.percentile(0.50);
  const std::uint64_t p90 = h.percentile(0.90);
  const std::uint64_t p99 = h.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log-linear resolution: p50 within 12.5% of the true median.
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 6300.0);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 12500.0);
  EXPECT_EQ(h.percentile(0.0), h.min());
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, MergeAndClear) {
  Histogram a;
  Histogram b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.sum(), 1010u);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile(0.99), 0u);
}

TEST(Histogram, RecordSecondsUsesMicroseconds) {
  Histogram h;
  h.record_seconds(0.250);
  EXPECT_EQ(h.max(), 250000u);
  EXPECT_NEAR(h.percentile_seconds(1.0), 0.250, 1e-9);
}

TEST(RollingHistogram, WindowRotatesOnSimTime) {
  RollingHistogram r{10.0};
  r.record_seconds(1.0, 1.0);
  EXPECT_EQ(r.window_count(5.0), 1u);
  // Next interval: previous window still visible (two-bucket read).
  r.record_seconds(2.0, 12.0);
  EXPECT_EQ(r.window_count(12.0), 2u);
  // Two idle intervals later both buckets have aged out except the newest.
  EXPECT_EQ(r.window_count(35.0), 0u);
}

TEST(RollingHistogram, ZeroIntervalIsCumulative) {
  RollingHistogram r{0.0};
  r.record_seconds(1.0, 0.0);
  r.record_seconds(1.0, 1e9);
  EXPECT_EQ(r.window_count(2e9), 2u);
}

TEST(StatsStore, HandlesAreStableAndDeduplicated) {
  StatsStore store;
  const CounterId a = store.counter(1, 2);
  const CounterId b = store.counter(1, 2);
  const CounterId c = store.counter(1, 3);
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_NE(a.slot, c.slot);
  store.add(a, 5);
  store.add(b, 2);
  EXPECT_EQ(store.value(a), 7u);
  EXPECT_EQ(store.value(c), 0u);
  EXPECT_EQ(store.counter_count(), 2u);
  EXPECT_TRUE(store.find_counter(1, 2).valid());
  EXPECT_FALSE(store.find_counter(9, 9).valid());
}

TEST(StatsStore, HistogramSlotsAndDeterministicIteration) {
  StatsStore store;
  const HistogramId h1 = store.histogram(10, 1);
  const HistogramId h2 = store.histogram(20, 1);
  store.record_seconds(h1, 0.001);
  store.record_seconds(h2, 0.002);
  std::vector<std::uint32_t> scopes;
  store.each_histogram([&](std::uint32_t scope, std::uint32_t, const Histogram& h) {
    scopes.push_back(scope);
    EXPECT_EQ(h.count(), 1u);
  });
  ASSERT_EQ(scopes.size(), 2u);  // creation order, not hash order
  EXPECT_EQ(scopes[0], 10u);
  EXPECT_EQ(scopes[1], 20u);
}

// The claim the micro-benches lean on: once handles exist, recording is
// allocation-free. Count global operator new across 10k records.
TEST(StatsStore, HotPathAllocatesNothing) {
  StatsStore store;
  const CounterId ok = store.counter(1, 1);
  const HistogramId lat = store.histogram(1, 2);
  RollingHistogram rolling{10.0};
  store.add(ok, 1);               // touch everything once before measuring
  store.record_seconds(lat, 0.01);
  rolling.record_seconds(0.01, 0.0);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    store.add(ok, 1);
    store.record_seconds(lat, 0.001 * i);
    rolling.record_seconds(0.001 * i, 0.5 * i);  // rotates many times
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(store.value(ok), 10001u);
}

}  // namespace
}  // namespace sf::stats
