#include "metrics/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sf::metrics {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), std::invalid_argument);
}

TEST(Table, CsvRendersAllCellKinds) {
  Table t({"name", "value", "count"}, 2);
  t.add_row({std::string("docker"), 99.5, std::int64_t{160}});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value,count\ndocker,99.50,160\n");
}

TEST(Table, MarkdownHasHeaderRule) {
  Table t({"x"});
  t.add_row({std::int64_t{1}});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_EQ(os.str(), "| x |\n|---|\n| 1 |\n");
}

TEST(Table, TextAlignsColumns) {
  Table t({"mode", "s"}, 1);
  t.add_row({std::string("native"), 250.0});
  std::ostringstream os;
  t.print_text(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("native"), std::string::npos);
  EXPECT_NE(out.find("250.0"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b"});
  EXPECT_EQ(t.columns(), 2u);
  t.add_row({1.0, 2.0}).add_row({3.0, 4.0});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace sf::metrics
