#include "storage/volume.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::storage {
namespace {

class VolumeTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  Volume vol{cl->node(0), "scratch"};
};

TEST_F(VolumeTest, WriteThenStat) {
  bool done = false;
  vol.write({"a.dat", 1000}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  ASSERT_TRUE(vol.contains("a.dat"));
  EXPECT_DOUBLE_EQ(vol.stat("a.dat")->bytes, 1000);
  EXPECT_EQ(vol.file_count(), 1u);
}

TEST_F(VolumeTest, WritePaysDiskBandwidth) {
  double done_at = -1;
  // 500 MB at 500 MB/s → 1 s.
  vol.write({"big.dat", 500e6}, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST_F(VolumeTest, ReadMissingFileReportsNotFound) {
  bool found = true;
  vol.read("missing", [&](bool ok, FileRef) { found = ok; });
  sim.run();
  EXPECT_FALSE(found);
}

TEST_F(VolumeTest, ReadReturnsSize) {
  vol.put_instant({"m.dat", 490000});
  FileRef got;
  vol.read("m.dat", [&](bool ok, FileRef f) {
    EXPECT_TRUE(ok);
    got = std::move(f);
  });
  sim.run();
  EXPECT_EQ(got.lfn, "m.dat");
  EXPECT_DOUBLE_EQ(got.bytes, 490000);
}

TEST_F(VolumeTest, PutInstantIsFree) {
  vol.put_instant({"x", 1e12});
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.has_pending_events());
  EXPECT_DOUBLE_EQ(vol.total_bytes(), 1e12);
}

TEST_F(VolumeTest, RemoveDeletes) {
  vol.put_instant({"x", 1});
  EXPECT_TRUE(vol.remove("x"));
  EXPECT_FALSE(vol.remove("x"));
  EXPECT_FALSE(vol.contains("x"));
}

TEST_F(VolumeTest, OverwriteReplacesSize) {
  vol.put_instant({"x", 100});
  bool done = false;
  vol.write({"x", 300}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(vol.stat("x")->bytes, 300);
  EXPECT_EQ(vol.file_count(), 1u);
}

TEST_F(VolumeTest, StageFileCopiesAcrossNodes) {
  Volume dst(cl->node(1), "scratch1");
  vol.put_instant({"in.dat", 1e6});
  bool ok = false;
  stage_file(cl->network(), vol, dst, "in.dat", [&](bool r) { ok = r; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(dst.contains("in.dat"));
  EXPECT_DOUBLE_EQ(dst.stat("in.dat")->bytes, 1e6);
  // Source keeps its copy.
  EXPECT_TRUE(vol.contains("in.dat"));
}

TEST_F(VolumeTest, StageMissingFileFails) {
  Volume dst(cl->node(1), "scratch1");
  bool ok = true;
  stage_file(cl->network(), vol, dst, "ghost", [&](bool r) { ok = r; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(dst.contains("ghost"));
}

TEST_F(VolumeTest, StageCostIncludesAllThreeLegs) {
  Volume dst(cl->node(1), "scratch1");
  // 1.25 GB: read 2.5 s (500 MB/s) + transfer 1 s (1.25 GB/s) + write 2.5 s.
  vol.put_instant({"big", 1.25e9});
  double done_at = -1;
  stage_file(cl->network(), vol, dst, "big", [&](bool) { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 6.0002, 1e-3);
}

}  // namespace
}  // namespace sf::storage
