#include "storage/replica_catalog.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::storage {
namespace {

class ReplicaCatalogTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  Volume v0{cl->node(0), "v0"};
  Volume v1{cl->node(1), "v1"};
  ReplicaCatalog rc;
};

TEST_F(ReplicaCatalogTest, RegisterAndLookup) {
  rc.register_replica("f", v0);
  ASSERT_TRUE(rc.has("f"));
  EXPECT_EQ(rc.lookup("f").size(), 1u);
  EXPECT_EQ(rc.primary("f"), &v0);
}

TEST_F(ReplicaCatalogTest, MultipleReplicasPreserveOrder) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v1);
  const auto vols = rc.lookup("f");
  ASSERT_EQ(vols.size(), 2u);
  EXPECT_EQ(vols[0], &v0);
  EXPECT_EQ(vols[1], &v1);
}

TEST_F(ReplicaCatalogTest, DuplicateRegistrationIgnored) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v0);
  EXPECT_EQ(rc.lookup("f").size(), 1u);
}

TEST_F(ReplicaCatalogTest, DeregisterRemoves) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v1);
  EXPECT_TRUE(rc.deregister_replica("f", v0));
  EXPECT_EQ(rc.primary("f"), &v1);
  EXPECT_TRUE(rc.deregister_replica("f", v1));
  EXPECT_FALSE(rc.has("f"));
  EXPECT_FALSE(rc.deregister_replica("f", v1));
}

TEST_F(ReplicaCatalogTest, UnknownLfnEmpty) {
  EXPECT_FALSE(rc.has("nope"));
  EXPECT_TRUE(rc.lookup("nope").empty());
  EXPECT_EQ(rc.primary("nope"), nullptr);
  EXPECT_EQ(rc.entry_count(), 0u);
}

TEST_F(ReplicaCatalogTest, DeregisterLastErasesEntry) {
  rc.register_replica("f", v0);
  EXPECT_EQ(rc.entry_count(), 1u);
  EXPECT_TRUE(rc.deregister_replica("f", v0));
  EXPECT_EQ(rc.entry_count(), 0u);
  EXPECT_FALSE(rc.has("f"));
  EXPECT_TRUE(rc.lookup("f").empty());
  // An erased entry is gone, not a zombie: the same lfn can come back.
  rc.register_replica("f", v1);
  EXPECT_EQ(rc.entry_count(), 1u);
  EXPECT_EQ(rc.primary("f"), &v1);
}

TEST_F(ReplicaCatalogTest, PrimaryPromotedAfterDeregister) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v1);
  EXPECT_EQ(rc.primary("f"), &v0);
  EXPECT_TRUE(rc.deregister_replica("f", v0));
  // Second replica is promoted; the entry survives, so no count change.
  EXPECT_EQ(rc.primary("f"), &v1);
  EXPECT_EQ(rc.entry_count(), 1u);
}

TEST_F(ReplicaCatalogTest, DoubleRegisterDoesNotInflateCount) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v0);
  EXPECT_EQ(rc.entry_count(), 1u);
  // One deregister fully empties the entry — the duplicate was dropped,
  // so no second copy lingers to keep the lfn alive.
  EXPECT_TRUE(rc.deregister_replica("f", v0));
  EXPECT_FALSE(rc.has("f"));
  EXPECT_EQ(rc.entry_count(), 0u);
}

TEST_F(ReplicaCatalogTest, InternedIdStableAcrossErase) {
  rc.register_replica("f", v0);
  const sim::ObjectId id = rc.id_of("f");
  ASSERT_NE(id, sim::kEmptyId);
  EXPECT_TRUE(rc.deregister_replica("f", v0));
  // The id slot outlives the entry (interned ids are append-only), but an
  // empty slot never hands out a volume.
  EXPECT_EQ(rc.id_of("f"), id);
  EXPECT_EQ(rc.primary_by_id(id), nullptr);
  rc.register_replica("f", v1);
  EXPECT_EQ(rc.id_of("f"), id);
  EXPECT_EQ(rc.primary_by_id(id), &v1);
}

TEST_F(ReplicaCatalogTest, DeregisterWrongVolumeLeavesEntry) {
  rc.register_replica("f", v0);
  EXPECT_FALSE(rc.deregister_replica("f", v1));
  EXPECT_EQ(rc.entry_count(), 1u);
  EXPECT_EQ(rc.primary("f"), &v0);
}

}  // namespace
}  // namespace sf::storage
