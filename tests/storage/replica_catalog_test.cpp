#include "storage/replica_catalog.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::storage {
namespace {

class ReplicaCatalogTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  Volume v0{cl->node(0), "v0"};
  Volume v1{cl->node(1), "v1"};
  ReplicaCatalog rc;
};

TEST_F(ReplicaCatalogTest, RegisterAndLookup) {
  rc.register_replica("f", v0);
  ASSERT_TRUE(rc.has("f"));
  EXPECT_EQ(rc.lookup("f").size(), 1u);
  EXPECT_EQ(rc.primary("f"), &v0);
}

TEST_F(ReplicaCatalogTest, MultipleReplicasPreserveOrder) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v1);
  const auto vols = rc.lookup("f");
  ASSERT_EQ(vols.size(), 2u);
  EXPECT_EQ(vols[0], &v0);
  EXPECT_EQ(vols[1], &v1);
}

TEST_F(ReplicaCatalogTest, DuplicateRegistrationIgnored) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v0);
  EXPECT_EQ(rc.lookup("f").size(), 1u);
}

TEST_F(ReplicaCatalogTest, DeregisterRemoves) {
  rc.register_replica("f", v0);
  rc.register_replica("f", v1);
  EXPECT_TRUE(rc.deregister_replica("f", v0));
  EXPECT_EQ(rc.primary("f"), &v1);
  EXPECT_TRUE(rc.deregister_replica("f", v1));
  EXPECT_FALSE(rc.has("f"));
  EXPECT_FALSE(rc.deregister_replica("f", v1));
}

TEST_F(ReplicaCatalogTest, UnknownLfnEmpty) {
  EXPECT_FALSE(rc.has("nope"));
  EXPECT_TRUE(rc.lookup("nope").empty());
  EXPECT_EQ(rc.primary("nope"), nullptr);
  EXPECT_EQ(rc.entry_count(), 0u);
}

}  // namespace
}  // namespace sf::storage
