#include "storage/shared_fs.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace sf::storage {
namespace {

class SharedFsTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  SharedFileSystem nfs{*cl, cl->node(0)};
};

TEST_F(SharedFsTest, RemoteWriteStoresOnServer) {
  bool done = false;
  nfs.write(cl->node(2).net_id(), {"out.dat", 1e6}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(nfs.contains("out.dat"));
  EXPECT_DOUBLE_EQ(nfs.stat("out.dat")->bytes, 1e6);
}

TEST_F(SharedFsTest, RemoteReadTransfersToClient) {
  nfs.put_instant({"in.dat", 1.25e9});
  double done_at = -1;
  bool found = false;
  nfs.read(cl->node(1).net_id(), "in.dat", [&](bool ok, FileRef) {
    found = ok;
    done_at = sim.now();
  });
  sim.run();
  EXPECT_TRUE(found);
  // Disk read 2.5 s + network 1 s (+latency).
  EXPECT_NEAR(done_at, 3.5002, 1e-3);
}

TEST_F(SharedFsTest, LocalClientSkipsNetwork) {
  nfs.put_instant({"in.dat", 1.25e9});
  double done_at = -1;
  nfs.read(cl->node(0).net_id(), "in.dat",
           [&](bool, FileRef) { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.5, 1e-6);  // disk only
}

TEST_F(SharedFsTest, MissingFileNotFound) {
  bool found = true;
  nfs.read(cl->node(1).net_id(), "nope",
           [&](bool ok, FileRef) { found = ok; });
  sim.run();
  EXPECT_FALSE(found);
}

TEST_F(SharedFsTest, RemoveWorks) {
  nfs.put_instant({"x", 10});
  EXPECT_TRUE(nfs.remove("x"));
  EXPECT_FALSE(nfs.contains("x"));
  EXPECT_EQ(nfs.file_count(), 0u);
}

TEST_F(SharedFsTest, ConcurrentReadersShareServerResources) {
  nfs.put_instant({"in.dat", 1.25e9});
  std::vector<double> done;
  for (int client = 1; client <= 3; ++client) {
    nfs.read(cl->node(client).net_id(), "in.dat",
             [&](bool, FileRef) { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  // Three 2.5 s disk reads share the disk (7.5 s) then three 1 s
  // transfers share the server egress (3 s): slower than a lone reader.
  EXPECT_GT(done.back(), 3.5002);
}

}  // namespace
}  // namespace sf::storage
