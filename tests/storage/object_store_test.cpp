#include "storage/object_store.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace sf::storage {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  ObjectStore minio{*cl, cl->node(0)};
  net::NodeId client = 0;

  void SetUp() override { client = cl->node(2).net_id(); }
};

TEST_F(ObjectStoreTest, PutThenGetRoundTrip) {
  bool put_ok = false;
  minio.put(client, "wf", "in0.dat", 490000, [&](bool ok) { put_ok = ok; });
  sim.run();
  EXPECT_TRUE(put_ok);
  EXPECT_TRUE(minio.contains("wf", "in0.dat"));

  bool get_ok = false;
  double size = 0;
  minio.get(client, "wf", "in0.dat", [&](bool ok, double bytes) {
    get_ok = ok;
    size = bytes;
  });
  sim.run();
  EXPECT_TRUE(get_ok);
  EXPECT_DOUBLE_EQ(size, 490000);
}

TEST_F(ObjectStoreTest, GetMissingIs404) {
  bool ok = true;
  minio.get(client, "wf", "ghost", [&](bool r, double) { ok = r; });
  sim.run();
  EXPECT_FALSE(ok);
}

TEST_F(ObjectStoreTest, DeleteRemoves) {
  minio.put(client, "b", "k", 10, [](bool) {});
  sim.run();
  bool removed = false;
  minio.remove(client, "b", "k", [&](bool r) { removed = r; });
  sim.run();
  EXPECT_TRUE(removed);
  EXPECT_FALSE(minio.contains("b", "k"));

  bool removed_again = true;
  minio.remove(client, "b", "k", [&](bool r) { removed_again = r; });
  sim.run();
  EXPECT_FALSE(removed_again);
}

TEST_F(ObjectStoreTest, BucketsNamespaceKeys) {
  minio.put(client, "b1", "k", 1, [](bool) {});
  minio.put(client, "b2", "k", 2, [](bool) {});
  sim.run();
  EXPECT_EQ(minio.object_count(), 2u);
}

TEST_F(ObjectStoreTest, TransferCostScalesWithSize) {
  double small_done = -1;
  double big_done = -1;
  minio.put(client, "b", "small", 1e3, [&](bool) { small_done = sim.now(); });
  sim.run();
  sim::Simulation sim2;
  auto cl2 = cluster::make_paper_testbed(sim2);
  ObjectStore minio2{*cl2, cl2->node(0)};
  minio2.put(cl2->node(2).net_id(), "b", "big", 1.25e9,
             [&](bool) { big_done = sim2.now(); });
  sim2.run();
  EXPECT_GT(big_done, small_done + 1.0);
}

}  // namespace
}  // namespace sf::storage
