#include <gtest/gtest.h>

#include <string>

#include "container/image.hpp"
#include "k8s/api_server.hpp"
#include "k8s/controllers.hpp"
#include "k8s/kube_cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::k8s {
namespace {

/// Complexity regression tests: probe counters (not timing) pin the
/// per-tick cost of the control-plane hot paths to what changed, not to
/// cluster or store size.
class ComplexityTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  ApiServer api{sim};

  void register_nodes(int n) {
    for (int i = 0; i < n; ++i) {
      NodeObject node;
      node.name = "node" + std::to_string(i);
      node.allocatable_cpu = 64;
      node.allocatable_memory = 256e9;
      api.register_node(node);
    }
  }

  void bind_running_pod(const std::string& pod, const std::string& node) {
    Pod p;
    p.name = pod;
    p.container.image = "matmul:latest";
    api.create_pod(std::move(p));
    api.mutate_pod(pod, [&node](Pod& mp) {
      mp.node_name = node;
      mp.phase = PodPhase::kRunning;
      mp.ready = true;
    });
  }
};

TEST_F(ComplexityTest, SweepWithNothingExpiredDoesZeroPerNodeWork) {
  register_nodes(512);
  NodeLifecycleConfig cfg;
  cfg.lease_duration_s = 1e9;  // nothing ever expires
  cfg.sweep_interval_s = 1.0;
  NodeLifecycleController ctl{api, cfg};
  sim.run_until(50.0);  // 50 sweeps over 512 fresh leases
  EXPECT_EQ(ctl.sweep_probes(), 0u);
  EXPECT_EQ(ctl.not_ready_transitions(), 0u);
  EXPECT_EQ(ctl.evictions(), 0u);
}

TEST_F(ComplexityTest, EvictionExaminesOnlyTheAffectedNodesPods) {
  constexpr int kNodes = 4;
  constexpr int kPodsPerNode = 8;
  register_nodes(kNodes);
  for (int n = 0; n < kNodes; ++n) {
    for (int p = 0; p < kPodsPerNode; ++p) {
      bind_running_pod("p" + std::to_string(n) + "-" + std::to_string(p),
                       "node" + std::to_string(n));
    }
  }
  NodeLifecycleConfig cfg;
  cfg.lease_duration_s = 4.0;
  cfg.sweep_interval_s = 1.0;
  NodeLifecycleController ctl{api, cfg};
  // Heartbeats for every node but node3, whose lease goes stale and
  // expires at the t=5 sweep.
  for (int t = 1; t <= 10; ++t) {
    sim.call_in(static_cast<double>(t), [this] {
      for (int n = 0; n < kNodes - 1; ++n) {
        api.renew_node_lease("node" + std::to_string(n));
      }
    });
  }
  sim.run_until(10.0);
  EXPECT_EQ(ctl.not_ready_transitions(), 1u);
  EXPECT_EQ(ctl.evictions(), static_cast<std::uint64_t>(kPodsPerNode));
  // The complexity claim: eviction walked node3's posting list only —
  // 8 pods examined, not the 32 in the store.
  EXPECT_EQ(ctl.eviction_probes(), static_cast<std::uint64_t>(kPodsPerNode));
}

TEST_F(ComplexityTest, ReconcileTouchesOnlyTheOwningDeploymentsPods) {
  DeploymentController ctl{api};
  auto make_deployment = [](const std::string& name, int replicas) {
    Deployment d;
    d.name = name;
    d.selector = {{"app", name}};
    d.pod_labels = {{"app", name}};
    d.pod_template.name = name;
    d.pod_template.image = name + ":latest";
    d.replicas = replicas;
    return d;
  };
  api.apply_deployment(make_deployment("big", 32));
  api.apply_deployment(make_deployment("small", 4));
  sim.run_until(30.0);
  ASSERT_EQ(api.list_pods().size(), 36u);

  const std::uint64_t before = ctl.reconcile_probes();
  api.apply_deployment(make_deployment("small", 6));
  sim.run_until(60.0);
  // One reconcile of "small" via the owner index: its 4 live pods
  // examined, none of big's 32.
  EXPECT_EQ(ctl.reconcile_probes() - before, 4u);
  EXPECT_EQ(api.list_pods().size(), 38u);
}

/// The shared heartbeat wheel must drop dead kubelets instead of polling
/// them forever, and pick them back up on reboot — lease behaviour over a
/// crash must match the old per-kubelet timers.
TEST(HeartbeatWheelTest, DeadNodeLeavesTheWheelAndReturnsOnReboot) {
  sim::Simulation sim;
  auto cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  NodeLifecycleConfig cfg;
  cfg.lease_duration_s = 1e9;  // keep the sweep out of the picture
  kube.enable_node_lifecycle(cfg, 1.0);
  const std::string victim = cl->node(1).name();

  sim.run_until(10.0);
  EXPECT_NEAR(kube.api().node_lease(victim), 10.0, 1e-9);

  cl->node(1).fail();
  sim.run_until(20.0);
  // Stale from the instant of the crash: the wheel stopped ticking it.
  EXPECT_NEAR(kube.api().node_lease(victim), 10.0, 1e-9);

  cl->node(1).recover();
  sim.run_until(25.0);
  EXPECT_NEAR(kube.api().node_lease(victim), 25.0, 1e-9);
}

}  // namespace
}  // namespace sf::k8s
