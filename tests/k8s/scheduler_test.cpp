// Focused scheduler behaviours: image-locality scoring, least-requested
// spreading, and resource-exhaustion handling.

#include <gtest/gtest.h>

#include "container/image.hpp"
#include "k8s/kube_cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::k8s {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};

  void SetUp() override { hub.push(container::make_task_image("matmul")); }

  Pod pod(const std::string& name, double cpu_request = 0.5) {
    Pod p;
    p.name = name;
    p.container.name = name;
    p.container.image = "matmul:latest";
    p.container.memory_bytes = 256e6;
    p.cpu_request = cpu_request;
    p.memory_request = 256e6;
    return p;
  }
};

TEST_F(SchedulerTest, ImageLocalityWinsOverEmptySpread) {
  // Only node2 has the image cached; with equal resource scores the
  // locality bonus must steer the pod there.
  kube.worker("node2").cache->seed_image(
      container::make_task_image("matmul"));
  kube.api().create_pod(pod("p0"));
  sim.run_until(30.0);
  const Pod* scheduled = kube.api().get_pod("p0");
  ASSERT_NE(scheduled, nullptr);
  EXPECT_EQ(scheduled->node_name, "node2");
  EXPECT_EQ(scheduled->phase, PodPhase::kRunning);
}

TEST_F(SchedulerTest, LeastRequestedSpreadsSequentialPods) {
  kube.seed_image_everywhere(container::make_task_image("matmul"));
  for (int i = 0; i < 3; ++i) {
    kube.api().create_pod(pod("p" + std::to_string(i)));
    sim.run_until(sim.now() + 5.0);
  }
  std::set<std::string> nodes;
  for (const auto* p : kube.api().list_pods()) nodes.insert(p->node_name);
  EXPECT_EQ(nodes.size(), 3u);
}

TEST_F(SchedulerTest, CpuExhaustionLeavesPodPending) {
  kube.seed_image_everywhere(container::make_task_image("matmul"));
  // 8-core workers: 3 pods of 8 cpu fill the cluster; a 4th waits.
  for (int i = 0; i < 4; ++i) {
    kube.api().create_pod(pod("big" + std::to_string(i), 8.0));
  }
  sim.run_until(30.0);
  int pending = 0;
  for (const auto* p : kube.api().list_pods()) {
    pending += p->phase == PodPhase::kPending ? 1 : 0;
  }
  EXPECT_EQ(pending, 1);
  EXPECT_EQ(kube.scheduler().pending_count(), 1u);
  // Freeing capacity lets it land.
  kube.api().delete_pod("big0");
  sim.run_until(60.0);
  EXPECT_EQ(kube.scheduler().pending_count(), 0u);
}

TEST_F(SchedulerTest, BindCountTracksScheduledPods) {
  kube.seed_image_everywhere(container::make_task_image("matmul"));
  kube.api().create_pod(pod("p0"));
  kube.api().create_pod(pod("p1"));
  sim.run_until(30.0);
  EXPECT_EQ(kube.scheduler().binds(), 2u);
}

}  // namespace
}  // namespace sf::k8s
