#include "k8s/api_server.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace sf::k8s {
namespace {

Pod make_pod(const std::string& name) {
  Pod p;
  p.name = name;
  p.labels = {{"app", "matmul"}};
  p.container.image = "matmul:latest";
  return p;
}

class ApiServerTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  ApiServer api{sim};
};

TEST_F(ApiServerTest, CreatePodAssignsUidAndPending) {
  const Uid uid = api.create_pod(make_pod("p0"));
  EXPECT_GT(uid, 0u);
  const Pod* p = api.get_pod("p0");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->phase, PodPhase::kPending);
}

TEST_F(ApiServerTest, DuplicatePodNameThrows) {
  api.create_pod(make_pod("p0"));
  EXPECT_THROW(api.create_pod(make_pod("p0")), std::invalid_argument);
}

TEST_F(ApiServerTest, WatchSeesAddedAfterLatency) {
  std::vector<std::pair<EventType, std::string>> events;
  api.watch_pods([&](EventType t, const Pod& p) {
    events.emplace_back(t, p.name);
  });
  api.create_pod(make_pod("p0"));
  EXPECT_TRUE(events.empty());  // delivery is asynchronous
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, EventType::kAdded);
  EXPECT_GE(sim.now(), api.api_latency());
}

TEST_F(ApiServerTest, MutateNotifiesModified) {
  api.create_pod(make_pod("p0"));
  sim.run();
  int modified = 0;
  api.watch_pods([&](EventType t, const Pod&) {
    if (t == EventType::kModified) ++modified;
  });
  EXPECT_TRUE(api.mutate_pod("p0", [](Pod& p) { p.ready = true; }));
  sim.run();
  EXPECT_EQ(modified, 1);
  EXPECT_TRUE(api.get_pod("p0")->ready);
}

TEST_F(ApiServerTest, MutateUnknownPodFalse) {
  EXPECT_FALSE(api.mutate_pod("ghost", [](Pod&) {}));
}

TEST_F(ApiServerTest, DeleteUnscheduledPodFinalizesDirectly) {
  api.create_pod(make_pod("p0"));
  sim.run();
  std::vector<EventType> events;
  api.watch_pods([&](EventType t, const Pod&) { events.push_back(t); });
  api.delete_pod("p0");
  sim.run();
  EXPECT_EQ(api.get_pod("p0"), nullptr);
  // Modified (Terminating) then Deleted.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], EventType::kModified);
  EXPECT_EQ(events[1], EventType::kDeleted);
}

TEST_F(ApiServerTest, DeleteScheduledPodWaitsForKubelet) {
  api.create_pod(make_pod("p0"));
  api.mutate_pod("p0", [](Pod& p) {
    p.node_name = "node1";
    p.phase = PodPhase::kScheduled;
  });
  sim.run();
  api.delete_pod("p0");
  sim.run();
  // Still present until a kubelet finalizes.
  ASSERT_NE(api.get_pod("p0"), nullptr);
  EXPECT_EQ(api.get_pod("p0")->phase, PodPhase::kTerminating);
  api.finalize_pod_deletion("p0");
  sim.run();
  EXPECT_EQ(api.get_pod("p0"), nullptr);
}

TEST_F(ApiServerTest, DoubleDeleteIsIdempotent) {
  api.create_pod(make_pod("p0"));
  api.mutate_pod("p0", [](Pod& p) {
    p.node_name = "n";
    p.phase = PodPhase::kScheduled;
  });
  sim.run();
  api.delete_pod("p0");
  api.delete_pod("p0");
  sim.run();
  EXPECT_EQ(api.get_pod("p0")->phase, PodPhase::kTerminating);
}

TEST_F(ApiServerTest, ListPodsBySelector) {
  api.create_pod(make_pod("p0"));
  Pod other = make_pod("p1");
  other.labels = {{"app", "fft"}};
  api.create_pod(std::move(other));
  EXPECT_EQ(api.list_pods().size(), 2u);
  EXPECT_EQ(api.list_pods({{"app", "matmul"}}).size(), 1u);
  EXPECT_EQ(api.list_pods({{"app", "nope"}}).size(), 0u);
  // Empty selector matches everything.
  EXPECT_EQ(api.list_pods({}).size(), 2u);
}

TEST_F(ApiServerTest, DeploymentApplyCreatesThenUpdates) {
  Deployment d;
  d.name = "matmul-rev1";
  d.replicas = 2;
  const Uid uid = api.apply_deployment(d);
  d.replicas = 5;
  EXPECT_EQ(api.apply_deployment(d), uid);
  EXPECT_EQ(api.get_deployment("matmul-rev1")->replicas, 5);
}

TEST_F(ApiServerTest, SetReplicasNotifiesOnlyOnChange) {
  Deployment d;
  d.name = "dep";
  d.replicas = 1;
  api.apply_deployment(d);
  sim.run();
  int events = 0;
  api.watch_deployments([&](EventType, const Deployment&) { ++events; });
  EXPECT_TRUE(api.set_deployment_replicas("dep", 1));  // no-op
  sim.run();
  EXPECT_EQ(events, 0);
  EXPECT_TRUE(api.set_deployment_replicas("dep", 3));
  sim.run();
  EXPECT_EQ(events, 1);
  EXPECT_FALSE(api.set_deployment_replicas("ghost", 1));
}

TEST_F(ApiServerTest, ServiceAndEndpoints) {
  Service s;
  s.name = "matmul";
  s.selector = {{"app", "matmul"}};
  api.create_service(s);
  ASSERT_NE(api.get_endpoints("matmul"), nullptr);
  EXPECT_TRUE(api.get_endpoints("matmul")->ready.empty());

  int notified = 0;
  api.watch_endpoints([&](EventType, const Endpoints&) { ++notified; });
  Endpoints eps;
  eps.service_name = "matmul";
  eps.ready.push_back(Endpoint{"p0", 1, 10001});
  api.set_endpoints(eps);
  api.set_endpoints(eps);  // identical → suppressed
  sim.run();
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(api.get_endpoints("matmul")->ready.size(), 1u);
}

TEST(SelectorMatch, Semantics) {
  EXPECT_TRUE(selector_matches({}, {{"a", "1"}}));
  EXPECT_TRUE(selector_matches({{"a", "1"}}, {{"a", "1"}, {"b", "2"}}));
  EXPECT_FALSE(selector_matches({{"a", "1"}}, {{"a", "2"}}));
  EXPECT_FALSE(selector_matches({{"a", "1"}}, {}));
}

// ---- Batched watch delivery ---------------------------------------------

TEST(WatchDeterminism, PerWatcherStreamsIndependentOfRegistrationOrder) {
  // The same CRUD script against two servers whose (tagged) watchers are
  // registered in different orders: each tag must observe the identical
  // event stream, and the engine must process the same number of events.
  auto script = [](const std::vector<std::string>& reg_order,
                   std::map<std::string, std::vector<std::string>>& logs) {
    sim::Simulation sim;
    ApiServer api{sim};
    for (const auto& tag : reg_order) {
      api.watch_pods([&logs, tag](EventType t, const Pod& p) {
        logs[tag].push_back(std::to_string(static_cast<int>(t)) + ":" +
                            p.name);
      });
    }
    api.create_pod(make_pod("a"));
    api.create_pod(make_pod("b"));
    api.mutate_pod("a", [](Pod& p) { p.ready = true; });
    sim.run();
    api.delete_pod("b");
    sim.run();
    return sim.events_processed();
  };
  std::map<std::string, std::vector<std::string>> first, second;
  const std::uint64_t e1 = script({"x", "y", "z"}, first);
  const std::uint64_t e2 = script({"z", "x", "y"}, second);
  EXPECT_EQ(first, second);
  EXPECT_EQ(e1, e2);
  EXPECT_FALSE(first.at("x").empty());
}

TEST(WatchDeterminism, OneEngineEventPerNotification) {
  // Fan-out is batched: the engine event count must not grow with the
  // number of registered watchers.
  auto events_for = [](int n_watchers) {
    sim::Simulation sim;
    ApiServer api{sim};
    int sink = 0;
    for (int w = 0; w < n_watchers; ++w) {
      api.watch_pods([&sink](EventType, const Pod&) { ++sink; });
    }
    api.create_pod(make_pod("p"));
    api.mutate_pod("p", [](Pod& p) { p.ready = true; });
    sim.run();
    EXPECT_EQ(sink, 2 * n_watchers);
    return sim.events_processed();
  };
  EXPECT_EQ(events_for(1), events_for(8));
}

TEST(WatchDeterminism, DeliveryFollowsRegistrationOrder) {
  sim::Simulation sim;
  ApiServer api{sim};
  std::vector<int> order;
  for (int w = 0; w < 4; ++w) {
    api.watch_pods([&order, w](EventType, const Pod&) { order.push_back(w); });
  }
  api.create_pod(make_pod("p"));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WatchDeterminism, WatcherRegisteredDuringDeliveryIsSafe) {
  // A watcher that registers another watcher from inside a delivery must
  // not invalidate the in-flight batch (the watch list is a deque).
  sim::Simulation sim;
  ApiServer api{sim};
  int late_events = 0;
  bool registered = false;
  api.watch_pods([&](EventType, const Pod&) {
    if (!registered) {
      registered = true;
      api.watch_pods([&late_events](EventType, const Pod&) { ++late_events; });
    }
  });
  api.create_pod(make_pod("p"));
  sim.run();
  EXPECT_EQ(late_events, 0);  // batch snapshot predates the registration
  api.mutate_pod("p", [](Pod& p) { p.ready = true; });
  sim.run();
  EXPECT_EQ(late_events, 1);
}

TEST(PodPhaseNames, AllDistinct) {
  EXPECT_STREQ(to_string(PodPhase::kPending), "Pending");
  EXPECT_STREQ(to_string(PodPhase::kScheduled), "Scheduled");
  EXPECT_STREQ(to_string(PodPhase::kRunning), "Running");
  EXPECT_STREQ(to_string(PodPhase::kTerminating), "Terminating");
  EXPECT_STREQ(to_string(PodPhase::kFailed), "Failed");
}

}  // namespace
}  // namespace sf::k8s
