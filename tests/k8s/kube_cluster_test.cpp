#include "k8s/kube_cluster.hpp"

#include <gtest/gtest.h>

#include "container/image.hpp"
#include "sim/simulation.hpp"

namespace sf::k8s {
namespace {

/// End-to-end control-plane tests: deployment → scheduler → kubelet →
/// ready pods → endpoints.
class KubeClusterTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  KubeCluster kube{*cl, hub,
                   {&cl->node(1), &cl->node(2), &cl->node(3)}};

  void SetUp() override {
    hub.push(container::make_task_image("matmul"));
  }

  Deployment deployment(int replicas) {
    Deployment d;
    d.name = "matmul-rev1";
    d.selector = {{"app", "matmul"}};
    d.pod_labels = {{"app", "matmul"}};
    d.pod_template.name = "matmul";
    d.pod_template.image = "matmul:latest";
    d.pod_template.memory_bytes = 512e6;
    d.cpu_request = 0.5;
    d.memory_request = 512e6;
    d.replicas = replicas;
    return d;
  }

  Service service() {
    Service s;
    s.name = "matmul";
    s.selector = {{"app", "matmul"}};
    return s;
  }

  int ready_pods() {
    int n = 0;
    for (const auto* p : kube.api().list_pods()) n += p->ready ? 1 : 0;
    return n;
  }
};

TEST_F(KubeClusterTest, DeploymentBringsUpReadyPods) {
  kube.api().apply_deployment(deployment(2));
  sim.run();
  EXPECT_EQ(ready_pods(), 2);
  for (const auto* p : kube.api().list_pods()) {
    EXPECT_EQ(p->phase, PodPhase::kRunning);
    EXPECT_FALSE(p->node_name.empty());
    EXPECT_NE(p->port, 0);
  }
}

TEST_F(KubeClusterTest, PodsSpreadAcrossNodes) {
  kube.api().apply_deployment(deployment(3));
  sim.run();
  std::set<std::string> nodes;
  for (const auto* p : kube.api().list_pods()) nodes.insert(p->node_name);
  EXPECT_EQ(nodes.size(), 3u);  // least-requested spreads them
}

TEST_F(KubeClusterTest, ImagePullPaidOncePerNode) {
  kube.api().apply_deployment(deployment(3));
  sim.run();
  const double t_first = sim.now();
  // Scale up: new pods land on nodes that already cached the image.
  kube.api().set_deployment_replicas("matmul-rev1", 6);
  sim.run();
  const double delta = sim.now() - t_first;
  EXPECT_LT(delta, t_first);  // warm pulls are much cheaper
  for (const auto& name : kube.worker_names()) {
    EXPECT_TRUE(kube.worker(name).cache->has_image("matmul:latest", hub));
  }
}

TEST_F(KubeClusterTest, ScaleToZeroDeletesPods) {
  kube.api().apply_deployment(deployment(2));
  sim.run();
  kube.api().set_deployment_replicas("matmul-rev1", 0);
  sim.run();
  EXPECT_TRUE(kube.api().list_pods().empty());
  // Containers removed, memory freed.
  for (const auto& name : kube.worker_names()) {
    EXPECT_EQ(kube.worker(name).runtime->container_count(), 0u);
    EXPECT_DOUBLE_EQ(kube.worker(name).node->memory_used(), 0.0);
  }
}

TEST_F(KubeClusterTest, EndpointsTrackReadyPods) {
  kube.api().create_service(service());
  kube.api().apply_deployment(deployment(2));
  sim.run();
  const Endpoints* eps = kube.api().get_endpoints("matmul");
  ASSERT_NE(eps, nullptr);
  EXPECT_EQ(eps->ready.size(), 2u);

  kube.api().set_deployment_replicas("matmul-rev1", 1);
  sim.run();
  EXPECT_EQ(kube.api().get_endpoints("matmul")->ready.size(), 1u);
}

TEST_F(KubeClusterTest, SeededImageSkipsPullLatency) {
  kube.seed_image_everywhere(container::make_task_image("matmul"));
  kube.api().apply_deployment(deployment(1));
  sim.run();
  // Control-plane latency + create + start + readiness only: well under
  // a second; a cold pull of ~242 MB would take several seconds.
  EXPECT_LT(sim.now(), 1.0);
  EXPECT_EQ(ready_pods(), 1);
}

TEST_F(KubeClusterTest, UnschedulablePodWaitsForCapacity) {
  Deployment d = deployment(1);
  d.cpu_request = 100.0;  // impossible
  kube.api().apply_deployment(d);
  sim.run_until(5.0);
  EXPECT_EQ(ready_pods(), 0);
  EXPECT_EQ(kube.scheduler().pending_count(), 1u);
  // Shrink the request: the controller template is fixed, so instead
  // verify a feasible second deployment still schedules.
  kube.api().apply_deployment([&] {
    Deployment ok = deployment(1);
    ok.name = "matmul-rev2";
    return ok;
  }());
  sim.run_until(60.0);
  EXPECT_EQ(ready_pods(), 1);
}

TEST_F(KubeClusterTest, DeleteDeploymentCleansUp) {
  kube.api().create_service(service());
  kube.api().apply_deployment(deployment(3));
  sim.run();
  kube.api().delete_deployment("matmul-rev1");
  sim.run();
  EXPECT_TRUE(kube.api().list_pods().empty());
  EXPECT_TRUE(kube.api().get_endpoints("matmul")->ready.empty());
}

TEST_F(KubeClusterTest, FailedPodIsReplaced) {
  // Image missing from the registry → pull fails → pod Failed → the
  // controller replaces it (which fails again); verify replacement
  // happens rather than a silent wedge.
  Deployment d = deployment(1);
  d.pod_template.image = "ghost:1";
  kube.api().apply_deployment(d);
  sim.run_until(3.5);
  EXPECT_GT(kube.controller_pods_created(), 1u);
  EXPECT_EQ(ready_pods(), 0);
}

TEST_F(KubeClusterTest, FailedPodReplacementWaitsForRestartBackoff) {
  kube.api().apply_deployment(deployment(1));
  sim.run();
  ASSERT_EQ(ready_pods(), 1);
  const auto pods = kube.api().list_pods();
  ASSERT_EQ(pods.size(), 1u);
  const std::uint64_t before = kube.controller_pods_created();

  const double t_kill = sim.now();
  ASSERT_TRUE(kube.kill_pod(pods[0]->name));
  // The failure is detected promptly (replacement armed) but the watch
  // storm from the kill (kModified, kDeleted) must not sneak a reconcile
  // past the 1 s restart backoff: no pod is created yet.
  sim.run_until(t_kill + 0.9);
  EXPECT_EQ(kube.controller_pods_created(), before);
  EXPECT_EQ(kube.controller_pods_replaced(), 1u);
  // …after which exactly one replacement comes up.
  sim.run();
  EXPECT_EQ(kube.controller_pods_created(), before + 1);
  EXPECT_EQ(kube.controller_pods_replaced(), 1u);
  EXPECT_EQ(ready_pods(), 1);
}

TEST_F(KubeClusterTest, KillPodOnUnknownPodReturnsFalse) {
  kube.api().apply_deployment(deployment(1));
  sim.run();
  EXPECT_FALSE(kube.kill_pod("no-such-pod"));
  EXPECT_EQ(ready_pods(), 1);
}

TEST_F(KubeClusterTest, PreStopHookRunsBeforeTermination) {
  kube.api().apply_deployment(deployment(1));
  sim.run();
  const auto pods = kube.api().list_pods();
  ASSERT_EQ(pods.size(), 1u);
  bool drained = false;
  kube.api().mutate_pod(pods[0]->name, [&](Pod& p) {
    p.pre_stop = [&drained](std::function<void()> done) {
      drained = true;
      done();
    };
  });
  sim.run();
  kube.api().set_deployment_replicas("matmul-rev1", 0);
  sim.run();
  EXPECT_TRUE(drained);
  EXPECT_TRUE(kube.api().list_pods().empty());
}

TEST_F(KubeClusterTest, WorkerLookup) {
  EXPECT_EQ(kube.worker_count(), 3u);
  EXPECT_EQ(kube.worker("node1").node->name(), "node1");
  EXPECT_THROW(static_cast<void>(kube.worker("node0")), std::out_of_range);
  EXPECT_EQ(kube.worker_names().size(), 3u);
}

}  // namespace
}  // namespace sf::k8s
