// EndpointsController dirty-marking regression: a pod event must rebuild
// only the services whose selector matches the pod — O(changed
// selectors), not O(all services). Probed via the refreshes() counter;
// the old refresh-everything controller rebuilt every service on every
// pod event, which this test distinguishes exactly.

#include <gtest/gtest.h>

#include "container/image.hpp"
#include "k8s/kube_cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::k8s {
namespace {

class EndpointsDirtyMarkingTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};

  void SetUp() override {
    hub.push(container::make_task_image("matmul"));
  }

  Deployment deployment(const std::string& app, int replicas) {
    Deployment d;
    d.name = app + "-rev1";
    d.selector = {{"app", app}};
    d.pod_labels = {{"app", app}};
    d.pod_template.name = app;
    d.pod_template.image = "matmul:latest";
    d.pod_template.memory_bytes = 512e6;
    d.cpu_request = 0.5;
    d.memory_request = 512e6;
    d.replicas = replicas;
    return d;
  }

  Service service(const std::string& app) {
    Service s;
    s.name = app;
    s.selector = {{"app", app}};
    return s;
  }
};

TEST_F(EndpointsDirtyMarkingTest, UnmatchedPodEventsTriggerNoRebuild) {
  kube.api().create_service(service("alpha"));
  sim.run();
  const auto baseline = kube.endpoints_refreshes();

  // Pods labelled app=beta match no service: the controller must not
  // touch alpha's endpoints for any of their lifecycle events.
  kube.api().apply_deployment(deployment("beta", 3));
  sim.run();
  EXPECT_EQ(kube.endpoints_refreshes(), baseline);
}

TEST_F(EndpointsDirtyMarkingTest, MatchedPodEventsRebuildOnlyTheirService) {
  kube.api().create_service(service("alpha"));
  kube.api().create_service(service("beta"));
  sim.run();
  const auto baseline = kube.endpoints_refreshes();

  kube.api().apply_deployment(deployment("alpha", 2));
  sim.run();
  const auto after_alpha = kube.endpoints_refreshes();
  EXPECT_GT(after_alpha, baseline);

  // beta saw zero matching pod events, so its endpoints stay absent —
  // with refresh-everything they would have been (re)built repeatedly.
  const Endpoints* beta_eps = kube.api().get_endpoints("beta");
  if (beta_eps != nullptr) {
    EXPECT_TRUE(beta_eps->ready.empty());
  }

  // Every alpha pod produces a bounded number of lifecycle events
  // (created/scheduled/running/ready); each rebuild maps to exactly one
  // of them, for exactly one service. The old controller rebuilt BOTH
  // services per event, i.e. an even count per event — growing one
  // deployment while the other's count stays frozen is the fix's
  // observable signature.
  kube.api().apply_deployment(deployment("beta", 2));
  sim.run();
  const auto after_beta = kube.endpoints_refreshes();
  EXPECT_GT(after_beta, after_alpha);

  const Endpoints* alpha_eps = kube.api().get_endpoints("alpha");
  ASSERT_NE(alpha_eps, nullptr);
  EXPECT_EQ(alpha_eps->ready.size(), 2u);
  beta_eps = kube.api().get_endpoints("beta");
  ASSERT_NE(beta_eps, nullptr);
  EXPECT_EQ(beta_eps->ready.size(), 2u);
}

TEST_F(EndpointsDirtyMarkingTest, RebuildCountScalesWithMatchingEventsOnly) {
  kube.api().create_service(service("alpha"));
  sim.run();

  // Bring up alpha alone and count its rebuilds.
  kube.api().apply_deployment(deployment("alpha", 2));
  sim.run();
  const auto alpha_only = kube.endpoints_refreshes();

  // A crowd of unrelated services must not inflate the per-event cost:
  // scaling alpha up by the same amount costs the same number of
  // rebuilds as before, despite 8 more services existing.
  for (int i = 0; i < 8; ++i) {
    kube.api().create_service(service("noise" + std::to_string(i)));
  }
  sim.run();
  const auto with_noise = kube.endpoints_refreshes();

  kube.api().set_deployment_replicas("alpha-rev1", 4);
  sim.run();
  const auto after_scale = kube.endpoints_refreshes();

  // +2 pods cost no more rebuilds than the first +2 pods did; the noise
  // services contribute zero.
  EXPECT_LE(after_scale - with_noise, alpha_only);
}

}  // namespace
}  // namespace sf::k8s
