// Mutation smoke-check: prove the invariant registry actually detects a
// planted bug. The test-only hook in CondorPool keeps a crashed node's
// claims alive (skipping both the claim drop and the startd reset) —
// the classic "forgot to release on the failure path" leak. With the
// hook on, the registry must fire; with it off, the identical run must
// be spotless. A registry that passes both ways tests nothing.

#include <gtest/gtest.h>

#include "check/fuzz.hpp"

namespace sf::check {
namespace {

/// Crash-heavy all-native case: claims are held for most of the run, so
/// a crash window reliably overlaps held claims. Pinned — the mutation
/// must be caught deterministically, not probabilistically.
FuzzCase leaky_case() {
  FuzzCase c;
  c.nodes = 4;
  c.workflows = 3;
  c.tasks = 5;
  c.serverless_fraction = 0;  // all tasks run on condor claims
  c.node_crash_mean_s = 25;
  c.horizon_s = 300;
  c.plant_claim_leak = true;
  return c;
}

TEST(MutationCheck, RegistryDetectsPlantedClaimLeak) {
  const FuzzOutcome out = run_case(leaky_case());
  EXPECT_FALSE(out.ok);
  EXPECT_GT(out.violation_count, 0u);
  // The leak shows up as claims parked on a crashed (down) node.
  EXPECT_NE(out.detail.find("condor.pool"), std::string::npos) << out.detail;
  EXPECT_NE(out.detail.find("down node"), std::string::npos) << out.detail;
}

TEST(MutationCheck, IdenticalRunWithoutMutationIsClean) {
  FuzzCase c = leaky_case();
  c.plant_claim_leak = false;
  const FuzzOutcome out = run_case(c);
  EXPECT_TRUE(out.ok) << out.detail;
  EXPECT_EQ(out.violation_count, 0u);
}

TEST(MutationCheck, ShrinkerReducesTheLeakCase) {
  // Start from a noisy superset of the failing case: extra channels and
  // a bigger workload. The shrinker must strip the irrelevant channels
  // and still end on a failing case.
  FuzzCase c = leaky_case();
  c.nodes = 5;
  c.racks = 2;
  c.pod_kill_mean_s = 120;
  c.degrade_mean_s = 150;
  c.flaky_nic_mean_s = 200;
  c.horizon_s = 420;

  const ShrinkResult res = shrink(c, 120);
  EXPECT_FALSE(res.outcome.ok);
  EXPECT_GT(res.trials, 1);
  EXPECT_LE(res.trials, 120);

  // The planted bug needs crashes; every other channel is noise.
  EXPECT_GT(res.reduced.node_crash_mean_s, 0.0);
  EXPECT_EQ(res.reduced.pod_kill_mean_s, 0.0);
  EXPECT_EQ(res.reduced.degrade_mean_s, 0.0);
  EXPECT_EQ(res.reduced.flaky_nic_mean_s, 0.0);
  EXPECT_LE(res.reduced.workflows, c.workflows);
  EXPECT_LE(res.reduced.horizon_s, c.horizon_s);

  // And the reduction prints as a pasteable regression test.
  const std::string repro = to_cpp_repro(res.reduced);
  EXPECT_NE(repro.find("TEST(FuzzRegression"), std::string::npos);
  EXPECT_NE(repro.find("c.plant_claim_leak = true;"), std::string::npos);
  EXPECT_NE(repro.find("run_case_checked"), std::string::npos);
}

}  // namespace
}  // namespace sf::check
