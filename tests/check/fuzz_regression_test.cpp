// The fuzz-repro bank.
//
// When a fuzz sweep fails (scripts/fuzz.sh --sweep, or the nightly
// date-rotated run), the shrinker prints a minimal `TEST(FuzzRegression,
// CaseN)` block. The banking workflow:
//
//   1. Paste the printed test into this file verbatim. If the sweep's
//      base seed was date-derived, keep the printed field values — they
//      pin the case forever; the seed that found it is irrelevant.
//   2. Rename it after the bug, not the sweep index (`Case17` from two
//      different nights will collide): e.g. `ClaimLeakOnRackFailure`.
//   3. Fix the bug. The banked case must pass before the fix lands, and
//      it keeps running in tier-1 forever — a failing sweep becomes a
//      permanent regression test instead of a lost stderr log.
//
// Cases here are exhaustively field-initialized (to_cpp_repro prints
// every field), so they survive future FuzzCase default changes.

#include "check/fuzz.hpp"

#include <gtest/gtest.h>

namespace sf::check {
namespace {

// Bank seed: a representative hard case kept from the sweep that
// validated the open-loop traffic axis — crashes, pod kills and a rack
// partition under ambient serving load plus a half-serverless DAG mix.
// Documents the banked-case shape; it has always passed.
TEST(FuzzRegression, CrashKillRackPartitionUnderOpenLoopLoad) {
  FuzzCase c;
  c.id = 0ull;
  c.seed = 0xB4A2C0DEull;
  c.fault_seed = 0xC4405EEDull;
  c.nodes = 4;
  c.racks = 2;
  c.workflows = 2;
  c.tasks = 3;
  c.dag_retries = 4;
  c.serverless_fraction = 0.5;
  c.prestage = true;
  c.min_scale = 1;
  c.request_timeout_s = 30;
  c.openloop_users = 2;
  c.openloop_rate_hz = 1.0;
  c.horizon_s = 240;
  c.node_crash_mean_s = 90;
  c.pull_outage_mean_s = 0;
  c.pod_kill_mean_s = 90;
  c.degrade_mean_s = 0;
  c.partition_mean_s = 0;
  c.rack_fail_mean_s = 0;
  c.rack_partition_mean_s = 150;
  c.deploy_storm_mean_s = 0;
  c.cpu_slow_mean_s = 0;
  c.flaky_nic_mean_s = 0;
  const auto out = run_case_checked(c);
  EXPECT_TRUE(out.ok) << out.detail;
}

}  // namespace
}  // namespace sf::check
