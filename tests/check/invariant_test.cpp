// InvariantChecker unit tests: clean runs stay clean, custom probes
// fire, throw-on-violation fails fast, quiesce-only probes run only at
// quiesce, and arming is what schedules work (zero overhead when off).

#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "metrics/ternary.hpp"

namespace sf::check {
namespace {

TEST(InvariantChecker, IdleTestbedSweepsClean) {
  core::PaperTestbed tb;
  CheckConfig cfg;
  cfg.interval_s = 2.0;
  cfg.horizon_s = 30.0;
  InvariantChecker checker(tb, cfg);
  checker.arm();
  tb.sim().run_until(30.0);
  checker.check_quiesce();
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GE(checker.sweeps(), 10u);  // cadence fired throughout
  EXPECT_GT(checker.evaluations(), checker.sweeps());
}

TEST(InvariantChecker, CleanWorkloadRunHasNoViolations) {
  core::TestbedOptions opts;
  opts.dag_retries = 2;
  core::PaperTestbed tb(42, opts);
  InvariantChecker checker(tb);
  checker.arm();
  tb.register_matmul_function();

  metrics::MixPoint mix;
  mix.native = 0.5;
  mix.serverless = 0.5;
  const auto result = tb.run_concurrent_mix(2, 4, mix);
  EXPECT_TRUE(result.all_succeeded);

  // Settle past the autoscaler's scale-to-zero window, then quiesce.
  tb.sim().run_until(tb.sim().now() + 300.0);
  checker.check_quiesce();
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(InvariantChecker, CustomInvariantFires) {
  core::PaperTestbed tb;
  InvariantChecker checker(tb);
  checker.add_invariant("test.always", [](std::vector<std::string>& out) {
    out.push_back("intentional");
  });
  checker.check_now();
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "test.always");
  EXPECT_EQ(checker.violations()[0].detail, "intentional");
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().find("test.always"), std::string::npos);
}

TEST(InvariantChecker, ViolationCapBoundsRecording) {
  core::PaperTestbed tb;
  CheckConfig cfg;
  cfg.max_violations = 3;
  InvariantChecker checker(tb, cfg);
  checker.add_invariant("test.noisy", [](std::vector<std::string>& out) {
    for (int i = 0; i < 10; ++i) out.push_back("spam");
  });
  checker.check_now();
  checker.check_now();
  EXPECT_EQ(checker.violations().size(), 3u);
}

TEST(InvariantChecker, ThrowOnViolationFailsFast) {
  core::PaperTestbed tb;
  CheckConfig cfg;
  cfg.throw_on_violation = true;
  InvariantChecker checker(tb, cfg);
  checker.add_invariant("test.bomb", [](std::vector<std::string>& out) {
    out.push_back("boom");
  });
  EXPECT_THROW(checker.check_now(), CheckFailure);
  try {
    InvariantChecker again(tb, cfg);
    again.add_invariant("test.bomb", [](std::vector<std::string>& out) {
      out.push_back("boom");
    });
    again.check_now();
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("test.bomb"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(InvariantChecker, QuiesceOnlyProbesSkipCadenceSweeps) {
  core::PaperTestbed tb;
  InvariantChecker checker(tb);
  checker.add_invariant(
      "test.quiesce",
      [](std::vector<std::string>& out) { out.push_back("at quiesce only"); },
      /*quiesce_only=*/true);
  checker.check_now();
  EXPECT_TRUE(checker.ok());
  checker.check_quiesce();
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "test.quiesce");
}

TEST(InvariantChecker, UnarmedCheckerSchedulesNothing) {
  core::PaperTestbed tb;
  const auto before = tb.sim().events_processed();
  tb.sim().run_until(60.0);
  const auto baseline = tb.sim().events_processed() - before;

  // Same drive with a constructed-but-unarmed checker: event count is
  // identical — construction alone costs the simulation nothing.
  core::PaperTestbed tb2;
  InvariantChecker checker(tb2);
  const auto before2 = tb2.sim().events_processed();
  tb2.sim().run_until(60.0);
  EXPECT_EQ(tb2.sim().events_processed() - before2, baseline);
  EXPECT_EQ(checker.sweeps(), 0u);
}

TEST(InvariantChecker, CadenceStopsAtHorizon) {
  core::PaperTestbed tb;
  CheckConfig cfg;
  cfg.interval_s = 1.0;
  cfg.horizon_s = 10.0;
  InvariantChecker checker(tb, cfg);
  checker.arm();
  tb.sim().run_until(100.0);
  const auto at_horizon = checker.sweeps();
  EXPECT_GE(at_horizon, 10u);
  tb.sim().run_until(200.0);
  EXPECT_EQ(checker.sweeps(), at_horizon);  // chain ended, queue drains
}

}  // namespace
}  // namespace sf::check
