// Property-fuzzer harness tests: case derivation is stable, runs are
// deterministic (bit-identical fingerprints on replay), pinned sweep
// points hold all properties, and the repro printer emits every field.

#include "check/fuzz.hpp"

#include <gtest/gtest.h>

namespace sf::check {
namespace {

// The tier-1 smoke sweep's pinned base seed (bench/fuzz_sim.cpp).
constexpr std::uint64_t kSmokeBase = 0xF0CC5EEDull;

TEST(FuzzCaseDerivation, SameSeedSameCase) {
  const FuzzCase a = random_case(kSmokeBase, 7);
  const FuzzCase b = random_case(kSmokeBase, 7);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.fault_seed, b.fault_seed);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.racks, b.racks);
  EXPECT_EQ(a.workflows, b.workflows);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.serverless_fraction, b.serverless_fraction);
  EXPECT_EQ(a.prestage, b.prestage);
  EXPECT_EQ(a.min_scale, b.min_scale);
  EXPECT_EQ(a.horizon_s, b.horizon_s);
  for (const auto& ch : fuzz_channels()) {
    EXPECT_EQ(a.*(ch.member), b.*(ch.member)) << ch.name;
  }
}

TEST(FuzzCaseDerivation, DistinctIndicesDiffer) {
  const FuzzCase a = random_case(kSmokeBase, 0);
  const FuzzCase b = random_case(kSmokeBase, 1);
  EXPECT_NE(a.seed, b.seed);  // forked roots, not sequential draws
}

TEST(FuzzCaseDerivation, FieldsStayInRange) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    const FuzzCase c = random_case(kSmokeBase, i);
    EXPECT_GE(c.nodes, 3);
    EXPECT_LE(c.nodes, 5);
    EXPECT_GE(c.racks, 1);
    EXPECT_LE(c.racks, 2);
    EXPECT_GE(c.workflows, 1);
    EXPECT_LE(c.workflows, 3);
    EXPECT_GE(c.tasks, 2);
    EXPECT_LE(c.tasks, 5);
    EXPECT_GE(c.serverless_fraction, 0.0);
    EXPECT_LE(c.serverless_fraction, 1.0);
    EXPECT_GE(c.horizon_s, 240.0);
    EXPECT_LE(c.horizon_s, 420.0);
    for (const auto& ch : fuzz_channels()) {
      const double mean = c.*(ch.member);
      EXPECT_TRUE(mean == 0.0 || mean >= 0.3 * c.horizon_s) << ch.name;
    }
  }
}

TEST(FuzzCaseDerivation, OpenLoopFieldsStayInRange) {
  int axis_on = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const FuzzCase c = random_case(kSmokeBase, i);
    if (c.openloop_users == 0) {
      EXPECT_EQ(c.openloop_rate_hz, 0.0);  // both off together
      continue;
    }
    ++axis_on;
    EXPECT_GE(c.openloop_users, 2);
    EXPECT_LE(c.openloop_users, 4);
    EXPECT_GE(c.openloop_rate_hz, 0.5);
    EXPECT_LE(c.openloop_rate_hz, 1.5);
  }
  EXPECT_GT(axis_on, 0);  // ~1/3 of cases carry ambient traffic
  EXPECT_LT(axis_on, 64);
}

TEST(FuzzRun, PinnedSmokePointHoldsAllProperties) {
  const FuzzOutcome out = run_case_checked(random_case(kSmokeBase, 0));
  EXPECT_TRUE(out.ok) << out.detail;
  EXPECT_TRUE(out.finished);
  EXPECT_TRUE(out.replayed);
  EXPECT_TRUE(out.replay_match);
  EXPECT_EQ(out.violation_count, 0u);
  EXPECT_GT(out.slowest, 0.0);
}

TEST(FuzzRun, FingerprintIsReproducible) {
  const FuzzCase c = random_case(kSmokeBase, 3);
  const FuzzOutcome a = run_case(c);
  const FuzzOutcome b = run_case(c);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.slowest, b.slowest);
  EXPECT_EQ(a.violation_count, b.violation_count);
}

TEST(FuzzRun, DifferentSeedsDifferentFingerprints) {
  const FuzzOutcome a = run_case(random_case(kSmokeBase, 1));
  const FuzzOutcome b = run_case(random_case(kSmokeBase, 2));
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(FuzzRun, OpenLoopAxisIssuesAndDrainsTraffic) {
  FuzzCase c;  // calm defaults; turn only the traffic axis on
  c.openloop_users = 3;
  c.openloop_rate_hz = 1.0;
  const FuzzOutcome out = run_case(c);
  EXPECT_TRUE(out.ok) << out.detail;  // ok requires the engine drained
  EXPECT_GT(out.openloop_issued, 0u);
  // ~3 users x 1 Hz over the min(120, horizon/2) = 120 s arrival window.
  EXPECT_NEAR(static_cast<double>(out.openloop_issued), 360.0, 120.0);
}

// The registry's counters prove each invariant ran against real state:
// a fault-heavy case with serverless tasks, warm pods and ambient
// open-loop traffic must leave no invariant vacuous — every probe armed
// and at least one subject examined. Guards against an invariant
// silently iterating an empty collection forever (e.g. after a rename
// or a store refactor disconnects its accessor).
TEST(FuzzRun, EveryInvariantExercisedNonVacuously) {
  FuzzCase c;
  c.seed = 11;
  c.nodes = 4;
  c.racks = 2;
  c.workflows = 2;
  c.tasks = 3;
  c.serverless_fraction = 0.5;
  c.min_scale = 1;
  c.openloop_users = 2;
  c.openloop_rate_hz = 1.0;
  c.outlier_detection = true;  // arms the ejection-filter invariants
  c.catalog_service = true;    // arms the metadata-tier invariants
  c.horizon_s = 240;
  c.node_crash_mean_s = 60;  // dense enough that faults certainly fire
  c.pod_kill_mean_s = 60;
  const FuzzOutcome out = run_case(c);
  EXPECT_TRUE(out.ok) << out.detail;
  ASSERT_FALSE(out.invariants.empty());
  for (const auto& inv : out.invariants) {
    EXPECT_GT(inv.evaluations, 0u) << inv.name << " was never armed";
    EXPECT_GT(inv.exercised, 0u) << inv.name << " passed vacuously";
  }
}

TEST(FuzzShrink, PassingCaseIsReturnedUntouched) {
  FuzzCase calm;  // defaults: no fault channels, tiny workload
  const ShrinkResult res = shrink(calm, 50);
  EXPECT_TRUE(res.outcome.ok);
  EXPECT_EQ(res.trials, 1);  // one verification run, no search
  EXPECT_EQ(res.reduced.workflows, calm.workflows);
}

TEST(FuzzRepro, PrintsEveryField) {
  const FuzzCase c = random_case(kSmokeBase, 5);
  const std::string repro = to_cpp_repro(c);
  EXPECT_NE(repro.find("TEST(FuzzRegression, Case5)"), std::string::npos);
  EXPECT_NE(repro.find("c.seed = 0x"), std::string::npos);
  EXPECT_NE(repro.find("c.fault_seed = 0x"), std::string::npos);
  EXPECT_NE(repro.find("c.nodes = "), std::string::npos);
  EXPECT_NE(repro.find("c.horizon_s = "), std::string::npos);
  EXPECT_NE(repro.find("c.openloop_users = "), std::string::npos);
  EXPECT_NE(repro.find("c.openloop_rate_hz = "), std::string::npos);
  EXPECT_NE(repro.find("c.outlier_detection = "), std::string::npos);
  for (const auto& ch : fuzz_channels()) {
    EXPECT_NE(repro.find(std::string("c.") + ch.name + " = "),
              std::string::npos)
        << ch.name;
  }
  EXPECT_NE(repro.find("EXPECT_TRUE(out.ok)"), std::string::npos);
}

TEST(FuzzChannels, CoverAllTwelveFaultChannels) {
  EXPECT_EQ(fuzz_channels().size(), 12u);
}

TEST(FuzzCaseDerivation, OutlierAxisFlipsOnSometimes) {
  int axis_on = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (random_case(kSmokeBase, i).outlier_detection) ++axis_on;
  }
  EXPECT_GT(axis_on, 0);  // ~1/3 of cases exercise the ejection filter
  EXPECT_LT(axis_on, 64);
}

}  // namespace
}  // namespace sf::check
