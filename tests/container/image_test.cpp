#include "container/image.hpp"

#include <gtest/gtest.h>

#include "container/image_cache.hpp"
#include "container/registry.hpp"

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::container {
namespace {

TEST(Image, TotalBytesSumsLayers) {
  const Image img{"x:1", {{"a", 10}, {"b", 20}, {"c", 30}}};
  EXPECT_DOUBLE_EQ(img.total_bytes(), 60);
}

TEST(Image, BaseImageRealisticSize) {
  const Image base = make_python_base_image();
  EXPECT_GT(base.total_bytes(), 100e6);
  EXPECT_LT(base.total_bytes(), 1e9);
  EXPECT_GE(base.layers.size(), 3u);
}

TEST(Image, TaskImageSharesBaseLayers) {
  const Image base = make_python_base_image();
  const Image task = make_task_image("matmul");
  EXPECT_EQ(task.name, "matmul:latest");
  ASSERT_EQ(task.layers.size(), base.layers.size() + 1);
  for (std::size_t i = 0; i < base.layers.size(); ++i) {
    EXPECT_EQ(task.layers[i], base.layers[i]);
  }
}

TEST(Image, DistinctTasksShareAllButCodeLayer) {
  const Image a = make_task_image("matmul");
  const Image b = make_task_image("fft");
  EXPECT_NE(a.layers.back().digest, b.layers.back().digest);
  EXPECT_EQ(a.layers[0], b.layers[0]);
}

class RegistryTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  Registry hub{cl->node(0)};
};

TEST_F(RegistryTest, PushAndManifest) {
  hub.push(make_task_image("matmul"));
  EXPECT_TRUE(hub.has("matmul:latest"));
  const auto m = hub.manifest("matmul:latest");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->name, "matmul:latest");
  EXPECT_EQ(hub.image_count(), 1u);
}

TEST_F(RegistryTest, MissingManifestEmpty) {
  EXPECT_FALSE(hub.manifest("ghost:1").has_value());
  EXPECT_FALSE(hub.has("ghost:1"));
}

class ImageCacheTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  Registry hub{cl->node(0)};
  ImageCache cache{cl->node(1), cl->network()};

  void SetUp() override { hub.push(make_task_image("matmul")); }
};

TEST_F(ImageCacheTest, PullFetchesAllLayers) {
  bool ok = false;
  cache.ensure_image("matmul:latest", hub, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(cache.has_image("matmul:latest", hub));
  EXPECT_EQ(cache.pulls_started(), 1u);
  EXPECT_GT(sim.now(), 0.1);  // ~242 MB over the wire is not free
}

TEST_F(ImageCacheTest, SecondPullIsFree) {
  cache.ensure_image("matmul:latest", hub, [](bool) {});
  sim.run();
  const double t_after_first = sim.now();
  bool ok = false;
  cache.ensure_image("matmul:latest", hub, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(sim.now(), t_after_first);
  EXPECT_EQ(cache.pulls_started(), 1u);
}

TEST_F(ImageCacheTest, SharedBaseMakesSecondImageCheap) {
  hub.push(make_task_image("fft"));
  cache.ensure_image("matmul:latest", hub, [](bool) {});
  sim.run();
  const double t1 = sim.now();
  cache.ensure_image("fft:latest", hub, [](bool) {});
  sim.run();
  const double delta = sim.now() - t1;
  // Only the 2 MB code layer moves; far cheaper than the 240 MB base pull.
  EXPECT_LT(delta, t1 / 10);
}

TEST_F(ImageCacheTest, ConcurrentPullsCoalesce) {
  int completions = 0;
  cache.ensure_image("matmul:latest", hub, [&](bool) { ++completions; });
  cache.ensure_image("matmul:latest", hub, [&](bool) { ++completions; });
  cache.ensure_image("matmul:latest", hub, [&](bool) { ++completions; });
  sim.run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(cache.pulls_started(), 1u);
  EXPECT_EQ(cache.pulls_coalesced(), 2u);
}

TEST_F(ImageCacheTest, UnknownImageFails) {
  bool ok = true;
  cache.ensure_image("ghost:1", hub, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_FALSE(ok);
}

TEST_F(ImageCacheTest, SeedSkipsAllCost) {
  cache.seed_image(make_task_image("matmul"));
  EXPECT_TRUE(cache.has_image("matmul:latest", hub));
  bool ok = false;
  cache.ensure_image("matmul:latest", hub, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST_F(ImageCacheTest, ClearDropsLayers) {
  cache.seed_image(make_task_image("matmul"));
  cache.clear();
  EXPECT_EQ(cache.layer_count(), 0u);
  EXPECT_FALSE(cache.has_image("matmul:latest", hub));
  EXPECT_DOUBLE_EQ(cache.cached_bytes(), 0.0);
}

}  // namespace
}  // namespace sf::container
