#include "container/runtime.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "container/image.hpp"
#include "sim/simulation.hpp"

namespace sf::container {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  Registry hub{cl->node(0)};
  ImageCache cache{cl->node(1), cl->network()};
  ContainerRuntime docker{cl->node(1), cache};

  ContainerSpec spec() {
    ContainerSpec s;
    s.name = "matmul";
    s.image = "matmul:latest";
    s.cpu_limit = 1.0;
    s.memory_bytes = 512e6;
    return s;
  }

  void SetUp() override {
    hub.push(make_task_image("matmul"));
    cache.seed_image(make_task_image("matmul"));
  }

  ContainerId create_started() {
    ContainerId id = kNoContainer;
    docker.create(spec(), [&](ContainerId c) { id = c; });
    sim.run();
    docker.start(id, [](bool ok) { EXPECT_TRUE(ok); });
    sim.run();
    return id;
  }
};

TEST_F(RuntimeTest, FullLifecycle) {
  ContainerId id = kNoContainer;
  docker.create(spec(), [&](ContainerId c) { id = c; });
  sim.run();
  ASSERT_NE(id, kNoContainer);
  EXPECT_EQ(docker.state(id), ContainerRuntime::State::kCreated);

  bool started = false;
  docker.start(id, [&](bool ok) { started = ok; });
  sim.run();
  EXPECT_TRUE(started);
  EXPECT_EQ(docker.state(id), ContainerRuntime::State::kRunning);

  bool ran = false;
  docker.exec(id, 0.5, [&](bool ok) { ran = ok; });
  sim.run();
  EXPECT_TRUE(ran);

  bool stopped = false;
  docker.stop(id, [&](bool ok) { stopped = ok; });
  sim.run();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(docker.state(id), ContainerRuntime::State::kStopped);

  bool removed = false;
  docker.remove(id, [&](bool ok) { removed = ok; });
  sim.run();
  EXPECT_TRUE(removed);
  EXPECT_FALSE(docker.exists(id));
  EXPECT_DOUBLE_EQ(cl->node(1).memory_used(), 0.0);
}

TEST_F(RuntimeTest, LifecycleOverheadsAccumulate) {
  const RuntimeOverheads& oh = docker.overheads();
  double done_at = -1;
  docker.run_task_once(spec(), 0.5, hub, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = sim.now();
  });
  sim.run();
  const double expected =
      oh.create_s + oh.start_s + 0.5 + oh.stop_s + oh.remove_s;
  EXPECT_NEAR(done_at, expected, 1e-9);
}

TEST_F(RuntimeTest, BootTimePaidOnStart) {
  ContainerSpec s = spec();
  s.boot_s = 1.0;
  ContainerId id = kNoContainer;
  docker.create(s, [&](ContainerId c) { id = c; });
  sim.run();
  double started_at = -1;
  docker.start(id, [&](bool) { started_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(started_at, docker.overheads().create_s +
                              docker.overheads().start_s + 1.0, 1e-9);
}

TEST_F(RuntimeTest, CpuQuotaEnforcedInExec) {
  ContainerSpec s = spec();
  s.cpu_limit = 0.5;
  ContainerId id = kNoContainer;
  docker.create(s, [&](ContainerId c) { id = c; });
  sim.run();
  docker.start(id, [](bool) {});
  sim.run();
  const double start_time = sim.now();
  double done_at = -1;
  docker.exec(id, 1.0, [&](bool) { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at - start_time, 2.0, 1e-9);
}

TEST_F(RuntimeTest, ConcurrentExecsShareQuota) {
  ContainerSpec s = spec();
  s.cpu_limit = 1.0;
  ContainerId id = kNoContainer;
  docker.create(s, [&](ContainerId c) { id = c; });
  sim.run();
  docker.start(id, [](bool) {});
  sim.run();
  const double t0 = sim.now();
  std::vector<double> done;
  docker.exec(id, 1.0, [&](bool) { done.push_back(sim.now()); });
  docker.exec(id, 1.0, [&](bool) { done.push_back(sim.now()); });
  EXPECT_EQ(docker.active_execs(id), 2u);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Both capped at 1 core each → node has 8 cores, both run at 1 core.
  EXPECT_NEAR(done.back() - t0, 1.0, 1e-9);
}

TEST_F(RuntimeTest, OutOfMemoryFailsCreate) {
  ContainerSpec s = spec();
  s.memory_bytes = 100e9;  // > 32 GB node
  ContainerId id = 1234;
  docker.create(s, [&](ContainerId c) { id = c; });
  sim.run();
  EXPECT_EQ(id, kNoContainer);
  EXPECT_EQ(cl->node(1).oom_events(), 1u);
}

TEST_F(RuntimeTest, MemoryReleasedAfterRemove) {
  ContainerId id = create_started();
  EXPECT_GT(cl->node(1).memory_used(), 0.0);
  docker.stop(id, [](bool) {});
  sim.run();
  docker.remove(id, [](bool) {});
  sim.run();
  EXPECT_DOUBLE_EQ(cl->node(1).memory_used(), 0.0);
}

TEST_F(RuntimeTest, ExecOnNonRunningFails) {
  ContainerId id = kNoContainer;
  docker.create(spec(), [&](ContainerId c) { id = c; });
  sim.run();
  bool ok = true;
  docker.exec(id, 1.0, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_FALSE(ok);
}

TEST_F(RuntimeTest, StartTwiceFails) {
  ContainerId id = create_started();
  bool ok = true;
  docker.start(id, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_FALSE(ok);
}

TEST_F(RuntimeTest, RemoveRunningFails) {
  ContainerId id = create_started();
  bool ok = true;
  docker.remove(id, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_TRUE(docker.exists(id));
}

TEST_F(RuntimeTest, StopKillsInflightExecs) {
  ContainerId id = create_started();
  bool exec_ok = true;
  docker.exec(id, 100.0, [&](bool r) { exec_ok = r; });
  sim.call_in(1.0, [&] { docker.stop(id, [](bool ok) { EXPECT_TRUE(ok); }); });
  sim.run();
  EXPECT_FALSE(exec_ok);
  EXPECT_EQ(docker.active_execs(id), 0u);
}

TEST_F(RuntimeTest, RunTaskOncePullsWhenMissing) {
  cache.clear();
  double done_at = -1;
  docker.run_task_once(spec(), 0.5, hub, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = sim.now();
  });
  sim.run();
  // Must exceed the no-pull cost because ~242 MB were fetched.
  const RuntimeOverheads& oh = docker.overheads();
  EXPECT_GT(done_at, oh.create_s + oh.start_s + 0.5 + oh.stop_s +
                         oh.remove_s + 0.1);
  EXPECT_TRUE(cache.has_image("matmul:latest", hub));
}

TEST_F(RuntimeTest, RunTaskOnceUnknownImageFails) {
  ContainerSpec s = spec();
  s.image = "ghost:1";
  bool ok = true;
  docker.run_task_once(s, 0.5, hub, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_FALSE(ok);
}

TEST_F(RuntimeTest, SequentialDockerRunsAccumulateOverhead) {
  // The Figure 1 Docker pattern: N tasks, each in a fresh container.
  constexpr int kTasks = 10;
  const RuntimeOverheads& oh = docker.overheads();
  int completed = 0;
  std::function<void()> run_next = [&] {
    if (completed == kTasks) return;
    docker.run_task_once(spec(), 0.1, hub, [&](bool ok) {
      EXPECT_TRUE(ok);
      ++completed;
      run_next();
    });
  };
  run_next();
  sim.run();
  EXPECT_EQ(completed, kTasks);
  const double per_task =
      oh.create_s + oh.start_s + 0.1 + oh.stop_s + oh.remove_s;
  EXPECT_NEAR(sim.now(), kTasks * per_task, 1e-6);
  EXPECT_EQ(docker.containers_created(), kTasks);
}

}  // namespace
}  // namespace sf::container
