// Testbed-level metadata-tier tests: the planner resolving stage-in and
// stage-out through the CatalogService/CatalogClient stack, the
// stale-read-to-dead-node recovery story, and the catalog_outage fault
// channel's applied-vs-skipped contract.

#include <gtest/gtest.h>

#include <string>

#include "core/testbed.hpp"
#include "fault/injector.hpp"
#include "storage/volume.hpp"
#include "workload/generators.hpp"

namespace sf::core {
namespace {

TEST(CatalogTierTest, DisabledByDefault) {
  PaperTestbed tb(42);
  EXPECT_EQ(tb.catalog_service(), nullptr);
  EXPECT_EQ(tb.catalog_client(), nullptr);
}

TEST(CatalogTierTest, WorkflowsResolveThroughTheTier) {
  TestbedOptions opts;
  opts.catalog.enabled = true;
  PaperTestbed tb(42, opts);
  const auto result = tb.run_concurrent_mix(2, 3, metrics::MixPoint{1, 0, 0});
  EXPECT_TRUE(result.all_succeeded);
  ASSERT_NE(tb.catalog_service(), nullptr);
  // Every stage-in resolution and stage-out registration went over the
  // wire (or was answered by the tier's cache) — none bypassed it.
  EXPECT_GT(tb.catalog_service()->served(), 0u);
  EXPECT_GT(tb.catalog_client()->lookups(), 0u);
  EXPECT_EQ(tb.catalog_client()->errors(), 0u);
  // Drained at quiesce.
  EXPECT_EQ(tb.catalog_service()->in_flight(), 0u);
  EXPECT_EQ(tb.catalog_client()->in_flight_keys(), 0u);
}

TEST(CatalogTierTest, CacheAbsorbsRepeatedResolutions) {
  TestbedOptions opts;
  opts.catalog.enabled = true;
  opts.catalog.client.ttl_s = 3600;
  PaperTestbed tb(42, opts);
  const auto first = tb.run_concurrent_mix(1, 3, metrics::MixPoint{1, 0, 0});
  ASSERT_TRUE(first.all_succeeded);
  const auto calls_after_first = tb.catalog_client()->service_calls();
  // Identically shaped second run: different lfns (run prefix), so the
  // cache cannot hide them — but within each run the shared chain inputs
  // are resolved once, not once per consumer.
  const auto second = tb.run_concurrent_mix(1, 3, metrics::MixPoint{1, 0, 0});
  ASSERT_TRUE(second.all_succeeded);
  EXPECT_GT(tb.catalog_client()->service_calls(), calls_after_first);
  EXPECT_LE(tb.catalog_client()->cache_hits() +
                tb.catalog_client()->coalesced(),
            tb.catalog_client()->lookups());
}

// The ISSUE's stale-read hazard, end to end: the client's cached replica
// location points at a node that has since died (and whose authoritative
// entry is gone). The stage-in consulting the stale entry must fail FAST
// — invalidating the entry, not wedging on disk I/O a dead node will
// never complete — so the existing DAG-retry path re-resolves through
// the service and finds the live replica on the submit staging volume.
TEST(CatalogTierTest, StaleReadToDeadNodeRecoveredByDagRetry) {
  TestbedOptions opts;
  opts.catalog.enabled = true;
  opts.catalog.client.ttl_s = 3600;  // entry stays "fresh" — and wrong
  opts.dag_retries = 3;
  PaperTestbed tb(42, opts);

  const auto wf = workload::make_matmul_chain(
      "wf", 2, tb.calibration().matrix_bytes);

  // A replica of the chain's seed input lives on worker node 2, and is
  // registered FIRST, so it is the primary the tier hands out.
  storage::Volume wvol(tb.cluster().node(2), "wdisk");
  wvol.put_instant({"wf.m0", tb.calibration().matrix_bytes});
  tb.replicas().register_replica("wf.m0", wvol);

  // Warm the client cache with that location.
  bool warmed = false;
  tb.catalog_client()->lookup("wf.m0", [&](bool ok, storage::Volume* vol) {
    warmed = true;
    EXPECT_TRUE(ok);
    EXPECT_EQ(vol, &wvol);
  });
  while (!warmed && tb.sim().has_pending_events()) tb.sim().step();
  ASSERT_TRUE(warmed);

  // The node dies and its authoritative entry is cleaned up — but the
  // client's cached entry still steers to it.
  tb.cluster().node(2).fail();
  ASSERT_TRUE(tb.replicas().deregister_replica("wf.m0", wvol));

  const auto result = tb.run_workflows({wf}, {});
  EXPECT_TRUE(result.all_succeeded);
  // The stale hit was detected and dropped, and the re-resolution went
  // back over the wire.
  EXPECT_GE(tb.catalog_client()->service_calls(), 2u);
  EXPECT_EQ(tb.catalog_client()->in_flight_keys(), 0u);
}

TEST(CatalogTierTest, OutageChannelAppliesWithTierOn) {
  TestbedOptions opts;
  opts.catalog.enabled = true;
  PaperTestbed tb(42, opts);
  fault::FaultConfig cfg;
  cfg.horizon_s = 300;
  cfg.catalog_outage_mean_s = 40;
  cfg.catalog_outage_duration_s = 5;
  fault::FaultInjector injector(tb, cfg, /*seed=*/7);
  injector.arm();
  tb.sim().run_until(300.0);
  EXPECT_GT(injector.catalog_outages(), 0u);
  EXPECT_EQ(injector.skipped(), 0u);
  // Heals: by plan end the service is reachable again.
  EXPECT_TRUE(tb.catalog_service()->available(tb.sim().now() + 5.0));
}

TEST(CatalogTierTest, OutageChannelSkippedWithoutTier) {
  PaperTestbed tb(42);  // no catalog tier
  fault::FaultConfig cfg;
  cfg.horizon_s = 300;
  cfg.catalog_outage_mean_s = 40;
  cfg.catalog_outage_duration_s = 5;
  fault::FaultInjector injector(tb, cfg, /*seed=*/7);
  injector.arm();
  tb.sim().run_until(300.0);
  EXPECT_EQ(injector.catalog_outages(), 0u);
  EXPECT_GT(injector.skipped(), 0u);
}

// A mid-run outage heals and the workload still completes: the tier
// retries/degrades through the window, and revalidation afterwards
// repopulates the cache from the authoritative catalog.
TEST(CatalogTierTest, OutageMidRunHealsAndWorkloadCompletes) {
  TestbedOptions opts;
  opts.catalog.enabled = true;
  opts.catalog.client.ttl_s = 2.0;  // force revalidations during the run
  // Deterministic 47.5 s retry envelope with the breaker off: every
  // lookup grinds straight through the outage window, no DAG retry
  // needed — the assertion isolates the tier's own ride-through.
  opts.catalog.client.retry =
      fault::RetryPolicy{/*max_attempts=*/10, /*base_s=*/0.5, /*cap_s=*/8.0,
                         /*multiplier=*/2.0, /*jitter_ratio=*/0.0};
  opts.catalog.client.breaker_enabled = false;
  opts.dag_retries = 4;
  PaperTestbed tb(42, opts);
  // The outage covers the first stage-in burst: the first DAG nodes
  // execute after a DAGMan scan plus a 10 s negotiation cycle, so a
  // window reaching 25 s is guaranteed to overlap them.
  tb.catalog_service()->set_outage_until(tb.sim().now() + 25.0);
  const auto result = tb.run_concurrent_mix(2, 3, metrics::MixPoint{1, 0, 0});
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_GT(tb.catalog_service()->outage_rejects(), 0u);
  EXPECT_GT(tb.catalog_client()->retries(), 0u);
  EXPECT_EQ(tb.catalog_service()->in_flight(), 0u);
}

}  // namespace
}  // namespace sf::core
