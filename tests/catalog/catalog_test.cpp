#include "catalog/catalog.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"
#include "storage/replica_catalog.hpp"
#include "storage/volume.hpp"

namespace sf::catalog {
namespace {

/// Service on node 0, client on node 1: every fetch pays two real network
/// hops plus the service time, so async ordering is exercised for real.
class CatalogTest : public ::testing::Test {
 protected:
  sim::Simulation sim{42};
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  storage::Volume disk{cl->node(1), "disk"};
  storage::Volume other{cl->node(2), "other"};
  storage::ReplicaCatalog rc;
  CatalogServiceConfig scfg;

  std::unique_ptr<CatalogService> service;
  std::unique_ptr<CatalogClient> client;

  void build(CatalogClientConfig ccfg = {}) {
    service = std::make_unique<CatalogService>(
        sim, cl->network(), cl->node(0).net_id(), rc, scfg);
    client = std::make_unique<CatalogClient>(sim, *service,
                                             cl->node(1).net_id(), ccfg);
  }

  /// One lookup driven to completion; returns (ok, volume).
  std::pair<bool, storage::Volume*> resolve(const std::string& lfn) {
    bool done = false;
    bool ok = false;
    storage::Volume* vol = nullptr;
    client->lookup(lfn, [&](bool k, storage::Volume* v) {
      done = true;
      ok = k;
      vol = v;
    });
    while (!done && sim.has_pending_events()) sim.step();
    EXPECT_TRUE(done);
    return {ok, vol};
  }

  void advance_to(double t) {
    if (t > sim.now()) sim.run_until(t);
  }
};

// ---- Service --------------------------------------------------------

TEST_F(CatalogTest, ServiceResolvesRegisteredReplica) {
  rc.register_replica("f", disk);
  build();
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(service->requests(), 1u);
  EXPECT_EQ(service->served(), 1u);
  EXPECT_EQ(client->service_calls(), 1u);
  // The answer took real time: two hops plus the service slot.
  EXPECT_GT(sim.now(), 0.0);
}

TEST_F(CatalogTest, ServiceAnswersAuthoritativeNegative) {
  build();
  const auto [ok, vol] = resolve("missing");
  // "No such entry" is a successful answer, not a failure.
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, nullptr);
  EXPECT_EQ(client->errors(), 0u);
}

TEST_F(CatalogTest, ServiceOutageRefusesUntilHeal) {
  rc.register_replica("f", disk);
  // Deterministic ladder (0.5/1/2/4 s, no jitter) reaches past the 3 s
  // outage, and the breaker is off so nothing cuts the ladder short.
  CatalogClientConfig ccfg;
  ccfg.retry = fault::RetryPolicy{/*max_attempts=*/8, /*base_s=*/0.5,
                                  /*cap_s=*/8.0, /*multiplier=*/2.0,
                                  /*jitter_ratio=*/0.0};
  ccfg.breaker_enabled = false;
  build(ccfg);
  service->set_outage_until(sim.now() + 3.0);
  EXPECT_FALSE(service->available(sim.now()));
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_GT(client->retries(), 0u);
  EXPECT_GT(service->outage_rejects(), 0u);
  EXPECT_TRUE(service->available(sim.now()));
}

TEST_F(CatalogTest, ServiceOutageExtendsNeverShrinks) {
  build();
  service->set_outage_until(10.0);
  service->set_outage_until(5.0);  // ignored: monotonic
  EXPECT_FALSE(service->available(9.9));
  EXPECT_TRUE(service->available(10.0));
}

TEST_F(CatalogTest, ServiceShedsPastBoundedQueue) {
  scfg.max_connections = 1;
  scfg.max_queue = 1;
  rc.register_replica("f", disk);
  build();
  int ok_count = 0;
  int shed_count = 0;
  for (int i = 0; i < 4; ++i) {
    service->lookup_replica(cl->node(1).net_id(), "f",
                            [&](CatalogReply reply) {
                              if (reply.ok) ++ok_count;
                              if (reply.overloaded) ++shed_count;
                            });
  }
  sim.run();
  // One in service, one queued, two shed at the bound.
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(shed_count, 2);
  EXPECT_EQ(service->overload_sheds(), 2u);
  EXPECT_EQ(service->queued(), 1u);
  EXPECT_EQ(service->peak_queue_depth(), 1u);
  EXPECT_EQ(service->in_flight(), 0u);
}

// ---- Client cache ---------------------------------------------------

TEST_F(CatalogTest, FreshEntryAnswersLocally) {
  rc.register_replica("f", disk);
  build();
  resolve("f");
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->service_calls(), 1u);
  EXPECT_EQ(client->cache_hits(), 1u);
}

TEST_F(CatalogTest, TtlExpiryRevalidatesAgainstSimTime) {
  rc.register_replica("f", disk);
  CatalogClientConfig ccfg;
  ccfg.ttl_s = 10.0;
  build(ccfg);
  resolve("f");
  // One tick short of expiry: still a local hit.
  advance_to(sim.now() + 9.0);
  resolve("f");
  EXPECT_EQ(client->service_calls(), 1u);
  // Past expiry: the entry is revalidated over the wire.
  advance_to(sim.now() + 2.0);
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->service_calls(), 2u);
  EXPECT_EQ(client->cache_hits(), 1u);
}

TEST_F(CatalogTest, NegativeEntriesCachedBriefly) {
  CatalogClientConfig ccfg;
  ccfg.negative_ttl_s = 2.0;
  build(ccfg);
  resolve("missing");
  resolve("missing");
  EXPECT_EQ(client->service_calls(), 1u);
  EXPECT_EQ(client->negative_hits(), 1u);
  // Negative entries expire on their own (shorter) clock.
  advance_to(sim.now() + 3.0);
  resolve("missing");
  EXPECT_EQ(client->service_calls(), 2u);
}

TEST_F(CatalogTest, InvalidateDropsEntry) {
  rc.register_replica("f", disk);
  build();
  resolve("f");
  EXPECT_EQ(client->cache_size(), 1u);
  client->invalidate("f");
  EXPECT_EQ(client->cache_size(), 0u);
  resolve("f");
  EXPECT_EQ(client->service_calls(), 2u);
}

// ---- Single-flight --------------------------------------------------

TEST_F(CatalogTest, ColdStampedeCoalescesToOneFetch) {
  rc.register_replica("f", disk);
  build();
  int done = 0;
  std::vector<storage::Volume*> answers;
  for (int i = 0; i < 8; ++i) {
    client->lookup("f", [&](bool ok, storage::Volume* vol) {
      EXPECT_TRUE(ok);
      answers.push_back(vol);
      ++done;
    });
  }
  EXPECT_EQ(client->in_flight_keys(), 1u);
  while (done < 8 && sim.has_pending_events()) sim.step();
  ASSERT_EQ(done, 8);
  for (storage::Volume* vol : answers) EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->service_calls(), 1u);
  EXPECT_EQ(client->coalesced(), 7u);
  EXPECT_EQ(service->requests(), 1u);
  EXPECT_EQ(client->in_flight_keys(), 0u);
}

TEST_F(CatalogTest, NaiveArmSendsEveryLookup) {
  rc.register_replica("f", disk);
  CatalogClientConfig ccfg;
  ccfg.cache_enabled = false;
  build(ccfg);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    client->lookup("f", [&](bool ok, storage::Volume*) {
      EXPECT_TRUE(ok);
      ++done;
    });
  }
  while (done < 3 && sim.has_pending_events()) sim.step();
  EXPECT_EQ(client->service_calls(), 3u);
  EXPECT_EQ(client->coalesced(), 0u);
  EXPECT_EQ(service->requests(), 3u);
}

// ---- Circuit breaker ------------------------------------------------

/// Breaker config where every lookup is exactly one failed service call
/// (no retries), so trip points are easy to count.
CatalogClientConfig one_shot_breaker() {
  CatalogClientConfig ccfg;
  ccfg.retry = fault::RetryPolicy{/*max_attempts=*/1, 0.2, 5.0, 2.0, 0.0};
  ccfg.breaker_failures = 3;
  ccfg.breaker_open_s = 10.0;
  return ccfg;
}

TEST_F(CatalogTest, BreakerOpensAfterConsecutiveFailures) {
  build(one_shot_breaker());
  service->set_outage_until(sim.now() + 1000.0);
  for (int i = 0; i < 3; ++i) {
    const auto [ok, vol] = resolve("k" + std::to_string(i));
    EXPECT_FALSE(ok);
    EXPECT_EQ(vol, nullptr);
  }
  EXPECT_EQ(client->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(client->breaker_opens(), 1u);
  EXPECT_EQ(client->service_calls(), 3u);
  // With the breaker open, lookups fail fast without touching the wire.
  const auto [ok, vol] = resolve("k3");
  EXPECT_FALSE(ok);
  EXPECT_EQ(vol, nullptr);
  EXPECT_EQ(client->service_calls(), 3u);
  EXPECT_EQ(client->calls_while_open(), 0u);
}

TEST_F(CatalogTest, HalfOpenProbeClosesOnHealthyService) {
  rc.register_replica("f", disk);
  build(one_shot_breaker());
  service->set_outage_until(sim.now() + 5.0);
  for (int i = 0; i < 3; ++i) resolve("k" + std::to_string(i));
  ASSERT_EQ(client->breaker_state(), BreakerState::kOpen);
  // Open window (10 s) outlasts the outage (5 s): the probe finds the
  // service healthy and the breaker snaps closed.
  advance_to(sim.now() + 11.0);
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(client->calls_while_open(), 0u);
}

TEST_F(CatalogTest, HalfOpenProbeFailureReopens) {
  build(one_shot_breaker());
  service->set_outage_until(sim.now() + 1000.0);
  for (int i = 0; i < 3; ++i) resolve("k" + std::to_string(i));
  ASSERT_EQ(client->breaker_state(), BreakerState::kOpen);
  advance_to(sim.now() + 11.0);
  // Window elapsed, outage persists: the probe fails and re-arms a full
  // open window.
  const auto [ok, vol] = resolve("probe");
  EXPECT_FALSE(ok);
  EXPECT_EQ(vol, nullptr);
  EXPECT_EQ(client->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(client->breaker_opens(), 2u);
  EXPECT_EQ(client->calls_while_open(), 0u);
}

// ---- Stale-while-revalidate -----------------------------------------

TEST_F(CatalogTest, StaleEntryStandsInWhileBreakerOpen) {
  rc.register_replica("f", disk);
  CatalogClientConfig ccfg = one_shot_breaker();
  ccfg.ttl_s = 5.0;
  build(ccfg);
  resolve("f");  // warm the entry
  advance_to(sim.now() + 6.0);  // let it expire
  service->set_outage_until(sim.now() + 1000.0);
  for (int i = 0; i < 3; ++i) resolve("k" + std::to_string(i));
  ASSERT_EQ(client->breaker_state(), BreakerState::kOpen);
  // Expired entry + open breaker: the stale location is served rather
  // than failing the caller.
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->stale_served(), 1u);
}

TEST_F(CatalogTest, StaleReadDisabledFailsInstead) {
  rc.register_replica("f", disk);
  CatalogClientConfig ccfg = one_shot_breaker();
  ccfg.ttl_s = 5.0;
  ccfg.stale_while_revalidate = false;
  build(ccfg);
  resolve("f");
  advance_to(sim.now() + 6.0);
  service->set_outage_until(sim.now() + 1000.0);
  for (int i = 0; i < 3; ++i) resolve("k" + std::to_string(i));
  const auto [ok, vol] = resolve("f");
  EXPECT_FALSE(ok);
  EXPECT_EQ(vol, nullptr);
  EXPECT_EQ(client->stale_served(), 0u);
}

TEST_F(CatalogTest, StaleServeDoesNotExtendExpiry) {
  rc.register_replica("f", disk);
  CatalogClientConfig ccfg = one_shot_breaker();
  ccfg.ttl_s = 5.0;
  ccfg.breaker_open_s = 3.0;
  build(ccfg);
  resolve("f");
  advance_to(sim.now() + 6.0);
  service->set_outage_until(sim.now() + 2.0);  // short outage
  for (int i = 0; i < 3; ++i) resolve("k" + std::to_string(i));
  resolve("f");  // stale served while open
  EXPECT_EQ(client->stale_served(), 1u);
  const auto calls_before = client->service_calls();
  // Outage healed and open window elapsed: the next miss revalidates over
  // the wire instead of serving stale forever.
  advance_to(sim.now() + 4.0);
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->service_calls(), calls_before + 1);
  EXPECT_EQ(client->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(client->stale_served(), 1u);
}

TEST_F(CatalogTest, RetryExhaustDegradesWithoutBreaker) {
  rc.register_replica("f", disk);
  CatalogClientConfig ccfg;
  ccfg.breaker_enabled = false;
  ccfg.ttl_s = 5.0;
  ccfg.retry = fault::RetryPolicy{/*max_attempts=*/2, 0.1, 1.0, 2.0, 0.0};
  build(ccfg);
  resolve("f");
  advance_to(sim.now() + 6.0);
  service->set_outage_until(sim.now() + 1000.0);
  // Two attempts (0.1 s apart) both land inside the outage; exhaustion
  // degrades to the stale entry.
  const auto [ok, vol] = resolve("f");
  EXPECT_TRUE(ok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->retries(), 1u);
  EXPECT_EQ(client->stale_served(), 1u);
}

// ---- Write-through registration -------------------------------------

TEST_F(CatalogTest, RegisterWritesThroughServiceAndCache) {
  build();
  bool done = false;
  bool ok = false;
  client->register_replica("out", disk, [&](bool k) {
    done = true;
    ok = k;
  });
  while (!done && sim.has_pending_events()) sim.step();
  ASSERT_TRUE(done);
  EXPECT_TRUE(ok);
  // Authoritative catalog updated over the wire...
  EXPECT_EQ(rc.primary("out"), &disk);
  // ...and the local entry is immediately fresh: no wire traffic to read
  // back what we just wrote.
  const auto calls = client->service_calls();
  const auto [rok, vol] = resolve("out");
  EXPECT_TRUE(rok);
  EXPECT_EQ(vol, &disk);
  EXPECT_EQ(client->service_calls(), calls);
  EXPECT_EQ(client->cache_hits(), 1u);
}

TEST_F(CatalogTest, RegisterFailsFastWithBreakerOpen) {
  build(one_shot_breaker());
  service->set_outage_until(sim.now() + 1000.0);
  for (int i = 0; i < 3; ++i) resolve("k" + std::to_string(i));
  ASSERT_EQ(client->breaker_state(), BreakerState::kOpen);
  bool done = false;
  bool ok = true;
  client->register_replica("out", disk, [&](bool k) {
    done = true;
    ok = k;
  });
  // Fails synchronously: no wire call while open.
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(rc.has("out"));
  EXPECT_EQ(client->calls_while_open(), 0u);
}

}  // namespace
}  // namespace sf::catalog
