// Priority scheduling and ClassAd-style requirements matching.

#include <gtest/gtest.h>

#include <vector>

#include "condor/pool.hpp"
#include "sim/simulation.hpp"

namespace sf::condor {
namespace {

class MatchmakingTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  CondorPool pool{*cl, cl->node(0),
                  {&cl->node(1), &cl->node(2), &cl->node(3)}};

  JobSpec job(const std::string& name, double work = 0.5) {
    JobSpec spec;
    spec.name = name;
    spec.executable = [work](ExecContext& ctx,
                             std::function<void(bool)> done) {
      ctx.node->run_process(work, [done = std::move(done)] { done(true); },
                            1.0);
    };
    spec.submit_volume = &pool.submit_staging();
    return spec;
  }
};

TEST_F(MatchmakingTest, HigherPriorityStartsFirst) {
  std::vector<std::string> start_order;
  auto track = [&](JobSpec spec) {
    spec.on_done = [&start_order, name = spec.name](const JobRecord& rec) {
      (void)rec;
      start_order.push_back(name);
    };
    return spec;
  };
  // Saturate the dispatch pipeline: submit low first, then high.
  JobSpec low = track(job("low"));
  low.priority = 0;
  JobSpec high = track(job("high"));
  high.priority = 10;
  JobSpec mid = track(job("mid"));
  mid.priority = 5;
  pool.submit(std::move(low));
  pool.submit(std::move(high));
  pool.submit(std::move(mid));
  sim.run();
  ASSERT_EQ(start_order.size(), 3u);
  // Same work per job → completion order mirrors start order.
  EXPECT_EQ(start_order[0], "high");
  EXPECT_EQ(start_order[1], "mid");
  EXPECT_EQ(start_order[2], "low");
}

TEST_F(MatchmakingTest, EqualPriorityStaysFifo) {
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    JobSpec spec = job("j" + std::to_string(i));
    spec.on_done = [&order, name = spec.name](const JobRecord&) {
      order.push_back(name);
    };
    pool.submit(std::move(spec));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"j0", "j1", "j2", "j3"}));
}

TEST_F(MatchmakingTest, RequirementsPinJobToMachine) {
  std::string ran_on;
  JobSpec spec = job("pinned");
  spec.requirements = [](const Startd& sd) {
    return sd.node().name() == "node2";
  };
  spec.on_done = [&](const JobRecord& rec) { ran_on = rec.worker; };
  pool.submit(std::move(spec));
  sim.run();
  EXPECT_EQ(ran_on, "node2");
}

TEST_F(MatchmakingTest, RequirementsByResources) {
  // Require ≥ 16 GB free — every paper-testbed node qualifies; the
  // predicate is evaluated against the actual startd.
  std::string ran_on;
  JobSpec spec = job("memory-hungry");
  spec.requirements = [](const Startd& sd) {
    return sd.free_memory() >= 16.0 * (1ull << 30);
  };
  spec.on_done = [&](const JobRecord& rec) { ran_on = rec.worker; };
  pool.submit(std::move(spec));
  sim.run();
  EXPECT_FALSE(ran_on.empty());
}

TEST_F(MatchmakingTest, UnsatisfiableRequirementsNeverRun) {
  bool ran = false;
  JobSpec spec = job("impossible");
  spec.requirements = [](const Startd&) { return false; };
  spec.on_done = [&](const JobRecord&) { ran = true; };
  const JobId id = pool.submit(std::move(spec));
  sim.run_until(120.0);
  EXPECT_FALSE(ran);
  EXPECT_EQ(pool.job(id)->state, JobState::kIdle);
  // A satisfiable job is not blocked behind it.
  bool other_ran = false;
  JobSpec ok = job("fine");
  ok.on_done = [&](const JobRecord&) { other_ran = true; };
  pool.submit(std::move(ok));
  sim.run_until(240.0);
  EXPECT_TRUE(other_ran);
}

TEST_F(MatchmakingTest, ExistingClaimNotReusedAcrossRequirements) {
  // First job pins to node1 and leaves a warm claim there; the second
  // requires node3, so it must negotiate a fresh claim instead of riding
  // the node1 claim.
  std::string first_on;
  std::string second_on;
  JobSpec first = job("first");
  first.requirements = [](const Startd& sd) {
    return sd.node().name() == "node1";
  };
  first.on_done = [&](const JobRecord& rec) { first_on = rec.worker; };
  pool.submit(std::move(first));
  sim.run();
  JobSpec second = job("second");
  second.requirements = [](const Startd& sd) {
    return sd.node().name() == "node3";
  };
  second.on_done = [&](const JobRecord& rec) { second_on = rec.worker; };
  pool.submit(std::move(second));
  sim.run();
  EXPECT_EQ(first_on, "node1");
  EXPECT_EQ(second_on, "node3");
}

}  // namespace
}  // namespace sf::condor
