#include "condor/dagman.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace sf::condor {
namespace {

class DagManTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  CondorPool pool{*cl, cl->node(0),
                  {&cl->node(1), &cl->node(2), &cl->node(3)}};

  DagNode node(const std::string& name, std::vector<std::string> parents,
               double work = 0.5, bool succeed = true) {
    DagNode n;
    n.name = name;
    n.parents = std::move(parents);
    n.job.executable = [this, name, work, succeed](
                           ExecContext& ctx, std::function<void(bool)> done) {
      order.push_back(name);
      ctx.node->run_process(work,
                            [done = std::move(done), succeed] {
                              done(succeed);
                            },
                            1.0);
    };
    n.job.submit_volume = &pool.submit_staging();
    return n;
  }

  std::vector<std::string> order;
};

TEST_F(DagManTest, EmptyDagSucceedsImmediately) {
  DagMan dag(pool);
  bool ok = false;
  dag.run([&](bool success) { ok = success; });
  sim.run();
  EXPECT_TRUE(ok);
}

TEST_F(DagManTest, LinearChainRespectsOrder) {
  DagMan dag(pool);
  dag.add_node(node("a", {}));
  dag.add_node(node("b", {"a"}));
  dag.add_node(node("c", {"b"}));
  bool ok = false;
  dag.run([&](bool success) { ok = success; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(dag.completed_nodes(), 3u);
  EXPECT_GT(dag.makespan(), 0.0);
}

TEST_F(DagManTest, ScanIntervalDelaysChildren) {
  DagMan dag(pool, DagConfig{.scan_interval_s = 5.0});
  dag.add_node(node("a", {}, 0.1));
  dag.add_node(node("b", {"a"}, 0.1));
  bool done = false;
  dag.run([&](bool) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  const JobRecord* a = dag.node_record("a");
  const JobRecord* b = dag.node_record("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // b was submitted at a scan boundary (multiple of 5 s after start).
  const double submit_offset = b->submit_time - dag.start_time();
  EXPECT_NEAR(std::fmod(submit_offset, 5.0), 0.0, 1e-6);
  EXPECT_GT(b->submit_time, a->end_time);
}

TEST_F(DagManTest, DiamondJoinWaitsForBothParents) {
  DagMan dag(pool);
  dag.add_node(node("src", {}));
  dag.add_node(node("left", {"src"}, 0.2));
  dag.add_node(node("right", {"src"}, 3.0));
  dag.add_node(node("sink", {"left", "right"}));
  bool ok = false;
  dag.run([&](bool success) { ok = success; });
  sim.run();
  EXPECT_TRUE(ok);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "src");
  EXPECT_EQ(order.back(), "sink");
  const JobRecord* right = dag.node_record("right");
  const JobRecord* sink = dag.node_record("sink");
  EXPECT_GE(sink->submit_time, right->end_time);
}

TEST_F(DagManTest, WideFanoutAllRun) {
  DagMan dag(pool);
  dag.add_node(node("root", {}));
  for (int i = 0; i < 20; ++i) {
    dag.add_node(node("w" + std::to_string(i), {"root"}));
  }
  bool ok = false;
  dag.run([&](bool success) { ok = success; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(dag.completed_nodes(), 21u);
}

TEST_F(DagManTest, MaxJobsThrottleLimitsSubmissions) {
  DagMan dag(pool, DagConfig{.scan_interval_s = 5.0, .max_jobs = 3});
  for (int i = 0; i < 9; ++i) {
    dag.add_node(node("w" + std::to_string(i), {}, 2.0));
  }
  bool ok = false;
  dag.run([&](bool success) { ok = success; });
  int peak = 0;
  while (sim.has_pending_events()) {
    sim.step();
    peak = std::max(peak, static_cast<int>(pool.idle_jobs() +
                                           pool.running_jobs()));
  }
  EXPECT_TRUE(ok);
  EXPECT_LE(peak, 3);
  EXPECT_EQ(dag.completed_nodes(), 9u);
}

TEST_F(DagManTest, RetrySucceedsOnSecondAttempt) {
  DagMan dag(pool);
  int attempts = 0;
  DagNode flaky;
  flaky.name = "flaky";
  flaky.retries = 2;
  flaky.job.submit_volume = &pool.submit_staging();
  flaky.job.executable = [&attempts](ExecContext& ctx,
                                     std::function<void(bool)> done) {
    ++attempts;
    ctx.node->run_process(0.1,
                          [done = std::move(done), ok = attempts >= 2] {
                            done(ok);
                          },
                          1.0);
  };
  dag.add_node(std::move(flaky));
  bool ok = false;
  dag.run([&](bool success) { ok = success; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(dag.total_retries(), 1u);
}

TEST_F(DagManTest, WorkerCrashRetriesNodeToCompletion) {
  // The schedd aborts jobs whose startd dies; DAGMan's retry budget then
  // resubmits, landing the rerun on a surviving worker.
  DagMan dag(pool);
  DagNode n = node("long", {}, 30.0);
  n.retries = 2;
  dag.add_node(std::move(n));
  bool finished = false;
  bool ok = false;
  dag.run([&](bool success) {
    finished = true;
    ok = success;
  });
  // First attempt starts ~12 s in (negotiation + dispatch + setup); crash
  // every worker mid-run so the attempt dies wherever it landed, then
  // reboot the pool and let the retry finish.
  sim.call_at(20.0, [this] {
    for (std::size_t i = 1; i <= 3; ++i) cl->node(i).fail();
  });
  sim.call_at(30.0, [this] {
    for (std::size_t i = 1; i <= 3; ++i) cl->node(i).recover();
  });
  while (!finished && sim.has_pending_events()) sim.step();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(ok);
  EXPECT_EQ(pool.jobs_aborted(), 1u);
  EXPECT_EQ(dag.total_retries(), 1u);
  EXPECT_EQ(order, (std::vector<std::string>{"long", "long"}));
}

TEST_F(DagManTest, RepeatedWorkerCrashesExhaustRetriesAndFailDag) {
  DagMan dag(pool);
  DagNode n = node("doomed", {}, 30.0);
  n.retries = 1;
  dag.add_node(std::move(n));
  dag.add_node(node("never", {"doomed"}));
  bool finished = false;
  bool ok = true;
  dag.run([&](bool success) {
    finished = true;
    ok = success;
  });
  // Crash the whole pool under attempt 1 (t=20), reboot (t=30), then
  // crash it again under the retry (t=50, which starts ~31-41 and runs
  // 30 s): the budget of one retry is exhausted and the DAG fails.
  const auto crash_all = [this] {
    for (std::size_t i = 1; i <= 3; ++i) cl->node(i).fail();
  };
  const auto recover_all = [this] {
    for (std::size_t i = 1; i <= 3; ++i) cl->node(i).recover();
  };
  sim.call_at(20.0, crash_all);
  sim.call_at(30.0, recover_all);
  sim.call_at(50.0, crash_all);
  while (!finished && sim.has_pending_events()) sim.step();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(ok);
  EXPECT_EQ(pool.jobs_aborted(), 2u);  // original + retried attempt
  EXPECT_EQ(dag.total_retries(), 1u);
  EXPECT_EQ(order, (std::vector<std::string>{"doomed", "doomed"}));
}

TEST_F(DagManTest, ExhaustedRetriesFailDag) {
  DagMan dag(pool);
  dag.add_node(node("bad", {}, 0.1, /*succeed=*/false));
  dag.add_node(node("never", {"bad"}));
  bool finished = false;
  bool ok = true;
  dag.run([&](bool success) {
    finished = true;
    ok = success;
  });
  sim.run();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(ok);
  EXPECT_EQ(order, (std::vector<std::string>{"bad"}));
}

TEST_F(DagManTest, UnknownParentThrows) {
  DagMan dag(pool);
  dag.add_node(node("child", {"ghost"}));
  EXPECT_THROW(dag.run([](bool) {}), std::invalid_argument);
}

TEST_F(DagManTest, CycleDetected) {
  DagMan dag(pool);
  dag.add_node(node("a", {"b"}));
  dag.add_node(node("b", {"a"}));
  EXPECT_THROW(dag.run([](bool) {}), std::invalid_argument);
}

TEST_F(DagManTest, DuplicateNodeThrows) {
  DagMan dag(pool);
  dag.add_node(node("a", {}));
  EXPECT_THROW(dag.add_node(node("a", {})), std::invalid_argument);
}

}  // namespace
}  // namespace sf::condor
