#include "condor/pool.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace sf::condor {
namespace {

/// Paper testbed: node0 = submit, nodes 1-3 = workers (24 cores total).
class CondorPoolTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  CondorConfig config_;
  std::unique_ptr<CondorPool> pool;

  void SetUp() override { reset({}); }

  void reset(CondorConfig cfg) {
    config_ = cfg;
    pool = std::make_unique<CondorPool>(
        *cl, cl->node(0),
        std::vector<cluster::Node*>{&cl->node(1), &cl->node(2),
                                    &cl->node(3)},
        config_);
  }

  /// A job burning `work` core-seconds (single-threaded) on the worker.
  JobSpec compute_job(const std::string& name, double work) {
    JobSpec spec;
    spec.name = name;
    spec.executable = [work](ExecContext& ctx,
                             std::function<void(bool)> done) {
      ctx.node->run_process(work, [done = std::move(done)] { done(true); },
                            1.0);
    };
    spec.submit_volume = &pool->submit_staging();
    return spec;
  }
};

TEST_F(CondorPoolTest, WorkerCrashAbortsRunningJobWithNoZombies) {
  JobState final_state = JobState::kIdle;
  JobSpec spec = compute_job("t0", 100.0);
  spec.on_done = [&](const JobRecord& rec) { final_state = rec.state; };
  const JobId id = pool->submit(std::move(spec));
  sim.run_until(20.0);  // running by ~12.07
  ASSERT_EQ(pool->running_jobs(), 1u);
  const JobRecord* rec = pool->job(id);
  ASSERT_NE(rec, nullptr);
  const std::string victim = rec->worker;
  ASSERT_FALSE(victim.empty());

  for (std::size_t i = 1; i < cl->size(); ++i) {
    if (cl->node(i).name() == victim) cl->node(i).fail();
  }
  // Startd death is detected synchronously: the job is aborted (failed,
  // on_done fired so a DAGMan above could retry) and its claim dropped.
  EXPECT_EQ(final_state, JobState::kFailed);
  EXPECT_EQ(pool->jobs_aborted(), 1u);
  EXPECT_EQ(pool->running_jobs(), 0u);
  EXPECT_EQ(pool->active_claims(), 0u);

  // Drain: no zombie continuation from the dead attempt may "complete"
  // the job after its worker evaporated.
  sim.run();
  EXPECT_EQ(pool->completed_jobs(), 0u);
  EXPECT_EQ(pool->failed_jobs(), 1u);
}

TEST_F(CondorPoolTest, SingleJobLifecycle) {
  double done_at = -1;
  JobState final_state = JobState::kIdle;
  JobSpec spec = compute_job("t0", 1.0);
  spec.on_done = [&](const JobRecord& rec) {
    final_state = rec.state;
    done_at = sim.now();
  };
  const JobId id = pool->submit(std::move(spec));
  sim.run();
  EXPECT_EQ(final_state, JobState::kCompleted);
  // negotiation (10) + dispatch (0.27) + setup (0.8) + work (1.0).
  EXPECT_NEAR(done_at, 12.07, 1e-6);
  const JobRecord* rec = pool->job(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->worker.empty());
  EXPECT_NEAR(rec->end_time - rec->start_time, 1.0, 1e-9);
  EXPECT_EQ(pool->completed_jobs(), 1u);
}

TEST_F(CondorPoolTest, ClaimReuseSkipsNegotiation) {
  // Two sequential jobs: the second rides the first's claim.
  std::vector<double> done;
  JobSpec first = compute_job("t0", 1.0);
  first.on_done = [&](const JobRecord&) {
    done.push_back(sim.now());
    JobSpec second = compute_job("t1", 1.0);
    second.on_done = [&](const JobRecord&) { done.push_back(sim.now()); };
    pool->submit(std::move(second));
  };
  pool->submit(std::move(first));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Second hop: dispatch + setup + work only — no 10 s negotiation wait.
  EXPECT_NEAR(done[1] - done[0], 0.27 + 0.8 + 1.0, 1e-6);
  EXPECT_EQ(pool->negotiation_cycles(), 1u);
}

TEST_F(CondorPoolTest, DispatchSerializesParallelJobs) {
  // 8 zero-ish work jobs: starts are spaced by dispatch_interval.
  std::vector<double> starts;
  for (int i = 0; i < 8; ++i) {
    JobSpec spec = compute_job("t" + std::to_string(i), 0.001);
    spec.on_done = [&, i](const JobRecord& rec) {
      starts.push_back(rec.start_time);
    };
    pool->submit(std::move(spec));
  }
  sim.run();
  ASSERT_EQ(starts.size(), 8u);
  std::sort(starts.begin(), starts.end());
  for (std::size_t i = 1; i < starts.size(); ++i) {
    EXPECT_NEAR(starts[i] - starts[i - 1], config_.dispatch_interval_s,
                1e-6);
  }
}

TEST_F(CondorPoolTest, JobsSpreadAcrossWorkers) {
  std::set<std::string> workers;
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    JobSpec spec = compute_job("t" + std::to_string(i), 5.0);
    spec.on_done = [&](const JobRecord& rec) {
      workers.insert(rec.worker);
      ++completed;
    };
    pool->submit(std::move(spec));
  }
  sim.run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(workers.size(), 3u);  // round-robin fill
}

TEST_F(CondorPoolTest, StageInAndOutMoveFiles) {
  pool->submit_staging().put_instant({"in.dat", 490000});
  JobSpec spec;
  spec.name = "t0";
  spec.inputs = {{"in.dat", 490000}};
  spec.outputs = {"out.dat"};
  spec.submit_volume = &pool->submit_staging();
  spec.executable = [](ExecContext& ctx, std::function<void(bool)> done) {
    // The task must see its staged input, then produce the output.
    EXPECT_TRUE(ctx.scratch->contains("in.dat"));
    ctx.scratch->write({"out.dat", 490000},
                       [done = std::move(done)] { done(true); });
  };
  bool ok = false;
  spec.on_done = [&](const JobRecord& rec) {
    ok = rec.state == JobState::kCompleted;
  };
  pool->submit(std::move(spec));
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(pool->submit_staging().contains("out.dat"));
}

TEST_F(CondorPoolTest, MissingInputFailsJob) {
  JobSpec spec = compute_job("t0", 1.0);
  spec.inputs = {{"ghost.dat", 1}};
  JobState state = JobState::kIdle;
  spec.on_done = [&](const JobRecord& rec) { state = rec.state; };
  pool->submit(std::move(spec));
  sim.run();
  EXPECT_EQ(state, JobState::kFailed);
  EXPECT_EQ(pool->failed_jobs(), 1u);
}

TEST_F(CondorPoolTest, MissingOutputFailsJob) {
  JobSpec spec = compute_job("t0", 0.1);
  spec.outputs = {"never-written.dat"};
  JobState state = JobState::kIdle;
  spec.on_done = [&](const JobRecord& rec) { state = rec.state; };
  pool->submit(std::move(spec));
  sim.run();
  EXPECT_EQ(state, JobState::kFailed);
}

TEST_F(CondorPoolTest, MaxRunningThrottle) {
  CondorConfig cfg;
  cfg.max_running_jobs = 2;
  reset(cfg);
  int peak = 0;
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    JobSpec spec = compute_job("t" + std::to_string(i), 2.0);
    spec.on_done = [&](const JobRecord&) { ++completed; };
    pool->submit(std::move(spec));
  }
  while (sim.has_pending_events()) {
    sim.step();
    peak = std::max(peak, static_cast<int>(pool->running_jobs()));
  }
  EXPECT_EQ(completed, 6);
  EXPECT_LE(peak, 2);
}

TEST_F(CondorPoolTest, RemoveIdleJobOnly) {
  JobSpec spec = compute_job("t0", 1.0);
  bool callback_ran = false;
  spec.on_done = [&](const JobRecord&) { callback_ran = true; };
  const JobId id = pool->submit(std::move(spec));
  EXPECT_TRUE(pool->remove(id));
  EXPECT_FALSE(pool->remove(id));
  sim.run();
  EXPECT_FALSE(callback_ran);
  EXPECT_EQ(pool->job(id)->state, JobState::kRemoved);
}

TEST_F(CondorPoolTest, ClaimsReleasedAfterIdleTimeout) {
  CondorConfig cfg;
  cfg.claim_idle_timeout_s = 5.0;
  reset(cfg);
  JobSpec spec = compute_job("t0", 0.5);
  pool->submit(std::move(spec));
  sim.run();
  EXPECT_EQ(pool->active_claims(), 0u);
  EXPECT_DOUBLE_EQ(pool->startd("node1").free_cpus(), 8.0);
}

TEST_F(CondorPoolTest, PoolSaturationQueuesOverflow) {
  // 25 long jobs on 24 cores: one waits for a slot.
  int completed = 0;
  for (int i = 0; i < 25; ++i) {
    JobSpec spec = compute_job("t" + std::to_string(i), 10.0);
    spec.on_done = [&](const JobRecord&) { ++completed; };
    pool->submit(std::move(spec));
  }
  // By t=20 the dispatch pipeline (24 × 0.27 s after the t=10 cycle) has
  // drained; exactly one job still waits for a slot.
  sim.run_until(20.0);
  EXPECT_EQ(pool->idle_jobs(), 1u);
  sim.run();
  EXPECT_EQ(completed, 25);
}

TEST_F(CondorPoolTest, JobStateNames) {
  EXPECT_STREQ(to_string(JobState::kIdle), "Idle");
  EXPECT_STREQ(to_string(JobState::kRunning), "Running");
  EXPECT_STREQ(to_string(JobState::kCompleted), "Completed");
  EXPECT_STREQ(to_string(JobState::kFailed), "Failed");
  EXPECT_STREQ(to_string(JobState::kRemoved), "Removed");
}

}  // namespace
}  // namespace sf::condor
