#include "core/integration.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace sf::core {
namespace {

TEST(DataStrategyNames, AllDistinct) {
  EXPECT_STREQ(to_string(DataStrategy::kPassByValue), "pass-by-value");
  EXPECT_STREQ(to_string(DataStrategy::kSharedFs), "shared-fs");
  EXPECT_STREQ(to_string(DataStrategy::kObjectStore), "object-store");
}

TEST(ProvisioningPolicy, FactoryHelpers) {
  const auto pre = ProvisioningPolicy::prestaged(3);
  EXPECT_EQ(pre.min_scale, 3);
  EXPECT_EQ(pre.initial_scale, 3);
  const auto def = ProvisioningPolicy::deferred();
  EXPECT_EQ(def.min_scale, 0);
  EXPECT_EQ(def.initial_scale, 0);
}

class IntegrationTest : public ::testing::Test {
 protected:
  PaperTestbed tb{42};
};

TEST_F(IntegrationTest, RegistrationCreatesKnativeService) {
  EXPECT_FALSE(tb.integration().is_registered("matmul"));
  tb.register_matmul_function();
  EXPECT_TRUE(tb.integration().is_registered("matmul"));
  EXPECT_EQ(tb.integration().service_name("matmul"), "fn-matmul");
  EXPECT_TRUE(tb.serving().has_service("fn-matmul"));
  // Pre-staged warm pods are ready before any workflow runs.
  EXPECT_EQ(tb.serving().ready_replicas("fn-matmul"), 3);
}

TEST_F(IntegrationTest, RegistrationIsIdempotent) {
  tb.register_matmul_function();
  tb.register_matmul_function();
  EXPECT_TRUE(tb.integration().is_registered("matmul"));
}

TEST_F(IntegrationTest, UnregisteredServiceNameThrows) {
  EXPECT_THROW(static_cast<void>(tb.integration().service_name("matmul")),
               std::out_of_range);
}

TEST_F(IntegrationTest, DeferredPolicyStartsNoPods) {
  tb.register_matmul_function(ProvisioningPolicy::deferred());
  tb.sim().run_until(tb.sim().now() + 10.0);
  EXPECT_EQ(tb.serving().ready_replicas("fn-matmul"), 0);
}

TEST_F(IntegrationTest, ServerlessWorkflowRunsEndToEnd) {
  tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", 3, 490000);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& j : wf.jobs()) modes[j.id] = pegasus::JobMode::kServerless;
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(tb.integration().invocations(), 3u);
  EXPECT_EQ(tb.integration().failures(), 0u);
  // Outputs made it back through the wrapper to the staging volume.
  EXPECT_TRUE(tb.condor().submit_staging().contains("w.m3"));
  EXPECT_EQ(result.mode_counts.at(pegasus::JobMode::kServerless), 3);
}

TEST_F(IntegrationTest, PassByValueMovesPayloadBytes) {
  tb.register_matmul_function();
  const double before = tb.cluster().network().total_bytes_delivered();
  auto wf = workload::make_matmul_chain("w", 1, 490000);
  std::map<std::string, pegasus::JobMode> modes{
      {"w.t0", pegasus::JobMode::kServerless}};
  EXPECT_TRUE(tb.run_workflows({wf}, modes).all_succeeded);
  const double moved =
      tb.cluster().network().total_bytes_delivered() - before;
  // Two input matrices each traverse wrapper→gateway→pod and the output
  // comes back twice: ≥ (2·0.49 MB)·2 + 0.49·2.
  EXPECT_GE(moved, 2 * 2 * 490000.0 + 2 * 490000.0 - 1);
}

TEST_F(IntegrationTest, ColdStartMatchesPaperAnchor) {
  // Deferred provisioning, pre-distributed image (the paper's measured
  // 1.48 s cold start, Section III-B).
  tb.register_matmul_function(ProvisioningPolicy::deferred());
  double response_at = -1;
  net::HttpRequest req;
  TaskPayload payload;
  payload.work_coreseconds = 0;
  req.body = payload;
  req.body_bytes = 10;
  const double t0 = tb.sim().now();
  tb.serving().invoke(tb.cluster().node(0).net_id(), "fn-matmul",
                      std::move(req),
                      [&](net::HttpResponse resp) {
                        EXPECT_TRUE(resp.ok());
                        response_at = tb.sim().now();
                      });
  while (response_at < 0 && tb.sim().has_pending_events()) tb.sim().step();
  const double cold = response_at - t0;
  EXPECT_NEAR(cold, tb.calibration().paper_cold_start_s, 0.25);
}

class StrategyTest : public ::testing::TestWithParam<DataStrategy> {};

TEST_P(StrategyTest, WorkflowCompletesUnderEveryDataStrategy) {
  TestbedOptions opts;
  opts.strategy = GetParam();
  PaperTestbed tb(7, opts);
  tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", 2, 490000);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& j : wf.jobs()) modes[j.id] = pegasus::JobMode::kServerless;
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_TRUE(tb.condor().submit_staging().contains("w.m2"));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(DataStrategy::kPassByValue,
                                           DataStrategy::kSharedFs,
                                           DataStrategy::kObjectStore));

TEST(IntegrationStrategies, SharedFsRequiresFilesystem) {
  sim::Simulation sim;
  auto cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1)}};
  knative::KnativeServing serving{kube, cl->node(0)};
  EXPECT_THROW(ServerlessIntegration(serving, hub, CalibrationProfile{},
                                     DataStrategy::kSharedFs, nullptr,
                                     nullptr),
               std::invalid_argument);
  EXPECT_THROW(ServerlessIntegration(serving, hub, CalibrationProfile{},
                                     DataStrategy::kObjectStore, nullptr,
                                     nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace sf::core
