#include "core/event_driven.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace sf::core {
namespace {

class EventDrivenTest : public ::testing::Test {
 protected:
  PaperTestbed tb{42};
  knative::Broker broker{tb.serving(), tb.cluster().node(0)};
  EventDrivenRunner runner{tb.serving(), broker, tb.calibration()};

  void SetUp() override {
    runner.setup(ProvisioningPolicy::prestaged(3));
    // Let the task/orchestrator pods warm up.
    tb.sim().run_until(tb.sim().now() + 30.0);
  }

  std::pair<bool, double> run_workflow(
      const pegasus::AbstractWorkflow& wf) {
    bool ok = false;
    double makespan = -1;
    bool finished = false;
    runner.run(wf, tb.transformations(), [&](bool success, double m) {
      ok = success;
      makespan = m;
      finished = true;
    });
    while (!finished && tb.sim().has_pending_events()) tb.sim().step();
    EXPECT_TRUE(finished);
    return {ok, makespan};
  }
};

TEST_F(EventDrivenTest, SetupDeploysBothFunctions) {
  EXPECT_TRUE(runner.is_set_up());
  EXPECT_TRUE(tb.serving().has_service(EventDrivenRunner::kTaskService));
  EXPECT_TRUE(
      tb.serving().has_service(EventDrivenRunner::kOrchestratorService));
  EXPECT_EQ(broker.trigger_count(), 1u);
}

TEST_F(EventDrivenTest, RunsChainInOrder) {
  const auto wf = workload::make_matmul_chain(
      "e", 5, tb.calibration().matrix_bytes);
  const auto [ok, makespan] = run_workflow(wf);
  EXPECT_TRUE(ok);
  EXPECT_EQ(runner.tasks_executed(), 5u);
  // Event-driven hops are sub-second: 5 tasks well under a minute, versus
  // ~20 s per hop through DAGMan/condor.
  EXPECT_LT(makespan, 60.0);
  EXPECT_GT(makespan, 5 * tb.calibration().matmul_work_s);
}

TEST_F(EventDrivenTest, RunsDiamondDag) {
  workload::add_montage_transformations(
      tb.transformations(), tb.calibration().matmul_transformation());
  const auto wf = workload::make_montage_like(
      "m", 4, tb.calibration().matrix_bytes);
  const auto [ok, makespan] = run_workflow(wf);
  EXPECT_TRUE(ok);
  EXPECT_EQ(runner.tasks_executed(), 13u);
  EXPECT_GT(makespan, 0.0);
}

TEST_F(EventDrivenTest, MuchFasterThanWmsPath) {
  const auto wf = workload::make_matmul_chain(
      "e", 10, tb.calibration().matrix_bytes);
  const auto [ok, event_driven_makespan] = run_workflow(wf);
  EXPECT_TRUE(ok);

  PaperTestbed wms_tb(42);
  wms_tb.register_matmul_function();
  auto wf2 = workload::make_matmul_chain(
      "w", 10, wms_tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& j : wf2.jobs()) {
    modes[j.id] = pegasus::JobMode::kServerless;
  }
  const auto wms = wms_tb.run_workflows({wf2}, modes);
  EXPECT_TRUE(wms.all_succeeded);
  // Orders of magnitude: event round-trips vs scan+negotiation stacks.
  EXPECT_LT(event_driven_makespan, wms.slowest / 5.0);
}

TEST_F(EventDrivenTest, SequentialRunsReuseSetup) {
  const auto wf1 = workload::make_matmul_chain(
      "a", 3, tb.calibration().matrix_bytes);
  EXPECT_TRUE(run_workflow(wf1).first);
  const auto wf2 = workload::make_matmul_chain(
      "b", 3, tb.calibration().matrix_bytes);
  EXPECT_TRUE(run_workflow(wf2).first);
  EXPECT_EQ(runner.tasks_executed(), 6u);
}

TEST_F(EventDrivenTest, RunBeforeSetupThrows) {
  PaperTestbed fresh(7);
  knative::Broker fresh_broker(fresh.serving(), fresh.cluster().node(0));
  EventDrivenRunner fresh_runner(fresh.serving(), fresh_broker,
                                 fresh.calibration());
  const auto wf = workload::make_matmul_chain("x", 2, 1000);
  EXPECT_THROW(fresh_runner.run(wf, fresh.transformations(),
                                [](bool, double) {}),
               std::logic_error);
}

TEST_F(EventDrivenTest, ServiceLossFailsTheRun) {
  const auto wf = workload::make_matmul_chain(
      "e", 6, tb.calibration().matrix_bytes);
  bool ok = true;
  bool finished = false;
  runner.run(wf, tb.transformations(), [&](bool success, double) {
    ok = success;
    finished = true;
  });
  tb.sim().call_in(1.0, [this] {
    tb.serving().delete_service(EventDrivenRunner::kTaskService);
  });
  while (!finished && tb.sim().has_pending_events()) tb.sim().step();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace sf::core
