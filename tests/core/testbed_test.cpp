#include "core/testbed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace sf::core {
namespace {

TEST(Testbed, AssemblesPaperTopology) {
  PaperTestbed tb(42);
  EXPECT_EQ(tb.cluster().size(), 4u);
  EXPECT_EQ(tb.condor().worker_count(), 3u);
  EXPECT_EQ(tb.kube().worker_count(), 3u);
  EXPECT_TRUE(tb.transformations().has("matmul"));
  EXPECT_TRUE(tb.registry().has("matmul:latest"));
}

TEST(Testbed, RejectsDegenerateCluster) {
  TestbedOptions opts;
  opts.node_count = 1;
  EXPECT_THROW(PaperTestbed(1, opts), std::invalid_argument);
}

TEST(Testbed, AllNativeWorkflowSetSucceeds) {
  PaperTestbed tb(42);
  const auto r = tb.run_concurrent_mix(3, 3, {1, 0, 0});
  EXPECT_TRUE(r.all_succeeded);
  EXPECT_EQ(r.makespans.size(), 3u);
  EXPECT_GT(r.slowest, 0);
  EXPECT_EQ(r.mode_counts.at(pegasus::JobMode::kNative), 9);
}

TEST(Testbed, MixedModesRespectFractions) {
  PaperTestbed tb(42);
  tb.register_matmul_function();
  const auto r = tb.run_concurrent_mix(2, 5, {0.5, 0.2, 0.3});
  EXPECT_TRUE(r.all_succeeded);
  EXPECT_EQ(r.mode_counts.at(pegasus::JobMode::kNative), 5);
  EXPECT_EQ(r.mode_counts.at(pegasus::JobMode::kContainer), 2);
  EXPECT_EQ(r.mode_counts.at(pegasus::JobMode::kServerless), 3);
}

TEST(Testbed, DeterministicAcrossIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    PaperTestbed tb(seed);
    tb.register_matmul_function();
    return tb.run_concurrent_mix(3, 4, {0.5, 0.0, 0.5}).slowest;
  };
  EXPECT_DOUBLE_EQ(run(123), run(123));
}

TEST(Testbed, IdenticalSeedsReplayIdenticalEventStreams) {
  // Engine-level determinism regression: a mid-size mixed-mode scenario
  // must replay the exact same event stream — not merely the same
  // headline makespan — across two fresh testbeds with the same seed.
  // Guards the FIFO-by-id ordering contract of the event queue.
  struct Replay {
    std::uint64_t events_processed;
    std::size_t trace_events;
    std::string trace_csv;
    std::vector<double> makespans;
  };
  auto run = [](std::uint64_t seed) {
    PaperTestbed tb(seed);
    tb.sim().trace().set_enabled(true);
    tb.register_matmul_function();
    const auto r = tb.run_concurrent_mix(4, 5, {0.4, 0.2, 0.4});
    EXPECT_TRUE(r.all_succeeded);
    std::ostringstream csv;
    tb.sim().trace().write_csv(csv);
    return Replay{tb.sim().events_processed(),
                  tb.sim().trace().size(), csv.str(), r.makespans};
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.trace_csv, b.trace_csv);
  ASSERT_EQ(a.makespans.size(), b.makespans.size());
  for (std::size_t i = 0; i < a.makespans.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.makespans[i], b.makespans[i]);
  }
  EXPECT_GT(a.events_processed, 0u);
  EXPECT_GT(a.trace_events, 0u);
}

TEST(Testbed, ConsecutiveRunsAreIndependent) {
  PaperTestbed tb(42);
  const auto a = tb.run_concurrent_mix(2, 3, {1, 0, 0});
  const auto b = tb.run_concurrent_mix(2, 3, {1, 0, 0});
  EXPECT_TRUE(a.all_succeeded);
  EXPECT_TRUE(b.all_succeeded);
  // Warm claims may make the second run slightly faster, but both must be
  // in the same regime.
  EXPECT_NEAR(a.slowest, b.slowest, a.slowest * 0.5);
}

TEST(Testbed, NativeBeatsContainerOnMakespan) {
  // Fresh testbeds: back-to-back runs in one pool would share warm
  // claims and bias the comparison.
  PaperTestbed native_tb(42);
  const auto native = native_tb.run_concurrent_mix(2, 5, {1, 0, 0});
  PaperTestbed container_tb(42);
  const auto container = container_tb.run_concurrent_mix(2, 5, {0, 1, 0});
  EXPECT_TRUE(native.all_succeeded);
  EXPECT_TRUE(container.all_succeeded);
  EXPECT_LT(native.slowest, container.slowest);
}

}  // namespace
}  // namespace sf::core
