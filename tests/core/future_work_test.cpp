// Tests for the paper's §IX future-work features: automated integration
// (§IX-B) and task resizing (§IX-C).

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace sf::core {
namespace {

TEST(AutoRegister, RegistersEveryTransformationAndReturnsModes) {
  PaperTestbed tb(42);
  auto wf = workload::make_matmul_chain("w", 4,
                                        tb.calibration().matrix_bytes);
  const auto modes = tb.integration().auto_register(
      wf, tb.transformations(), ProvisioningPolicy::prestaged(2));
  EXPECT_TRUE(tb.integration().is_registered("matmul"));
  EXPECT_EQ(modes.size(), 4u);
  for (const auto& [id, mode] : modes) {
    EXPECT_EQ(mode, pegasus::JobMode::kServerless);
  }
}

TEST(AutoRegister, AutoRegisteredWorkflowRunsEndToEnd) {
  PaperTestbed tb(42);
  auto wf = workload::make_matmul_chain("w", 3,
                                        tb.calibration().matrix_bytes);
  const auto modes = tb.integration().auto_register(
      wf, tb.transformations(), ProvisioningPolicy::prestaged(3));
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(tb.integration().invocations(), 3u);
}

TEST(AutoRegister, UnknownTransformationThrows) {
  PaperTestbed tb(42);
  pegasus::AbstractWorkflow wf("w");
  wf.declare_file("in", 1);
  wf.declare_file("out", 1);
  pegasus::AbstractJob job;
  job.id = "mystery";
  job.transformation = "not-in-catalog";
  job.uses = {{"in", pegasus::LinkType::kInput},
              {"out", pegasus::LinkType::kOutput}};
  wf.add_job(std::move(job));
  EXPECT_THROW(tb.integration().auto_register(wf, tb.transformations(),
                                              ProvisioningPolicy{}),
               std::out_of_range);
}

class ResizedChainTest : public ::testing::Test {
 protected:
  PaperTestbed tb{42};

  void SetUp() override {
    const auto matmul = tb.calibration().matmul_transformation();
    tb.transformations().add(workload::make_part_transformation(matmul, 4));
    tb.transformations().add(workload::make_concat_transformation(matmul));
  }
};

TEST_F(ResizedChainTest, ShapeSplitsStages) {
  const auto wf = workload::make_resized_chain("r", 3, 4, 490000);
  // Per stage: 4 parts + 1 join.
  EXPECT_EQ(wf.jobs().size(), 15u);
  // Joins depend on all parts of their stage.
  EXPECT_EQ(wf.parents_of("r.join0").size(), 4u);
  // Stage 1 parts depend on stage 0's join (via m1).
  EXPECT_EQ(wf.parents_of("r.t1_0"),
            (std::vector<std::string>{"r.join0"}));
  EXPECT_EQ(wf.final_outputs(), (std::vector<std::string>{"r.m3"}));
}

TEST_F(ResizedChainTest, SplitFactorOnePlainChainShape) {
  const auto wf = workload::make_resized_chain("r", 2, 1, 490000);
  EXPECT_EQ(wf.jobs().size(), 4u);  // 2 × (1 part + join)
  EXPECT_THROW(workload::make_resized_chain("bad", 2, 0, 1),
               std::invalid_argument);
}

TEST_F(ResizedChainTest, PartTransformationDividesWork) {
  const auto matmul = tb.calibration().matmul_transformation();
  const auto part = workload::make_part_transformation(matmul, 4);
  EXPECT_EQ(part.name, "matmul_part");
  EXPECT_DOUBLE_EQ(part.work_coreseconds, matmul.work_coreseconds / 4);
  const auto concat = workload::make_concat_transformation(matmul);
  EXPECT_EQ(concat.name, "concat");
  EXPECT_LT(concat.work_coreseconds, 0.1);
}

TEST_F(ResizedChainTest, ResizedWorkflowRunsNative) {
  const auto wf = workload::make_resized_chain(
      "r", 2, 4, tb.calibration().matrix_bytes);
  const auto result = tb.run_workflows({wf}, {});
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_TRUE(tb.condor().submit_staging().contains("r.m2"));
}

TEST_F(ResizedChainTest, ResizedWorkflowRunsServerless) {
  tb.register_matmul_function();
  const auto wf = workload::make_resized_chain(
      "r", 2, 4, tb.calibration().matrix_bytes);
  const auto modes = tb.integration().auto_register(
      wf, tb.transformations(), ProvisioningPolicy::prestaged(3));
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  // parts + joins all went through functions.
  EXPECT_EQ(tb.integration().invocations(), 10u);
}

}  // namespace
}  // namespace sf::core
