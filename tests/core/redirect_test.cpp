#include "core/redirect.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace sf::core {
namespace {

/// Fixture providing an idle testbed plus helpers to load worker nodes
/// with background CPU hogs (the over-utilization §IX-D targets).
class RedirectTest : public ::testing::Test {
 protected:
  PaperTestbed tb{42};

  void SetUp() override { tb.register_matmul_function(); }

  /// Saturates a worker with long-running uncapped background work.
  void load_node(const std::string& name, int hogs, double work = 1e6) {
    auto& node = tb.cluster().node_by_name(name);
    for (int i = 0; i < hogs; ++i) {
      node.run_process(work, [] {}, 1.0);
    }
  }

  PaperTestbed::RunResult run_adaptive(TaskRedirector& redirector,
                                       int n_tasks) {
    auto wf = workload::make_parallel_matmuls(
        "adapt", n_tasks, tb.calibration().matrix_bytes);
    workload::seed_initial_inputs(wf, tb.condor().submit_staging(),
                                  tb.replicas());
    pegasus::PlannerOptions opts;
    opts.default_mode = pegasus::JobMode::kServerless;
    opts.registry = &tb.registry();
    opts.docker = &tb.docker();
    opts.serverless_factory = redirector.adaptive_factory();
    pegasus::Planner planner(wf, tb.transformations(), tb.replicas(),
                             tb.condor(), opts);
    condor::DagMan dag(tb.condor());
    planner.plan().load_into(dag);
    bool ok = false;
    bool finished = false;
    dag.run([&](bool success) {
      ok = success;
      finished = true;
    });
    while (!finished && tb.sim().has_pending_events()) tb.sim().step();
    PaperTestbed::RunResult result;
    result.all_succeeded = ok;
    result.slowest = dag.makespan();
    return result;
  }
};

TEST_F(RedirectTest, IdleNodesRunNative) {
  TaskRedirector redirector(tb.integration(), 0.75);
  const auto result = run_adaptive(redirector, 6);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(redirector.redirected(), 0u);
  EXPECT_EQ(redirector.ran_native(), 6u);
}

TEST_F(RedirectTest, LoadedNodesRedirectToServerless) {
  // Saturate every worker: all tasks should flee to the function (whose
  // pods, albeit co-located, have their own cgroup share).
  for (const auto& name : {"node1", "node2", "node3"}) {
    load_node(name, 16);
  }
  TaskRedirector redirector(tb.integration(), 0.75);
  const auto result = run_adaptive(redirector, 6);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(redirector.redirected(), 6u);
  EXPECT_EQ(redirector.ran_native(), 0u);
}

TEST_F(RedirectTest, MixedLoadSplitsDecisions) {
  load_node("node1", 16);
  load_node("node2", 16);
  TaskRedirector redirector(tb.integration(), 0.75);
  const auto result = run_adaptive(redirector, 9);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_GT(redirector.redirected(), 0u);
  EXPECT_GT(redirector.ran_native(), 0u);
  EXPECT_EQ(redirector.redirected() + redirector.ran_native(), 9u);
}

TEST_F(RedirectTest, InvalidThresholdThrows) {
  EXPECT_THROW(TaskRedirector(tb.integration(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(TaskRedirector(tb.integration(), 1.5),
               std::invalid_argument);
}

TEST_F(RedirectTest, RedirectionBeatsStaticNativeUnderLoad) {
  // Static native on loaded workers vs adaptive redirection; the
  // redirected tasks escape contention through the pods' cgroup shares.
  PaperTestbed native_tb(42);
  for (const auto& name : {"node1", "node2"}) {
    auto& node = native_tb.cluster().node_by_name(name);
    for (int i = 0; i < 24; ++i) node.run_process(1e6, [] {}, 1.0);
  }
  auto wf = workload::make_parallel_matmuls(
      "load", 12, native_tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> native_modes;
  for (const auto& j : wf.jobs()) {
    native_modes[j.id] = pegasus::JobMode::kNative;
  }
  const auto native = native_tb.run_workflows({wf}, native_modes);

  for (const auto& name : {"node1", "node2"}) {
    load_node(name, 24);
  }
  tb.serving().set_load_balancing(knative::LoadBalancingPolicy::kLeastLoaded);
  TaskRedirector redirector(tb.integration(), 0.75);
  const auto adaptive = run_adaptive(redirector, 12);
  EXPECT_TRUE(native.all_succeeded);
  EXPECT_TRUE(adaptive.all_succeeded);
  EXPECT_GT(redirector.redirected(), 0u);
  EXPECT_LE(adaptive.slowest, native.slowest);
}

}  // namespace
}  // namespace sf::core
