// Trade-off explorer — interactively probe Figure 5's spectrum.
//
// Runs the concurrent-workflow experiment for a handful of execution-mode
// mixes along the native↔serverless↔container edges and prints a small
// text rendering of the performance/isolation landscape, so you can see
// the paper's triangle without plotting anything.

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/testbed.hpp"

using namespace sf;
using namespace sf::core;

namespace {

double measure(const metrics::MixPoint& mix) {
  PaperTestbed testbed(/*seed=*/42);
  if (mix.serverless > 0) testbed.register_matmul_function();
  const auto result = testbed.run_concurrent_mix(6, 6, mix);
  return result.slowest;
}

}  // namespace

int main() {
  std::cout << "Performance/isolation trade-off explorer (6x6 workflows)\n"
            << "========================================================\n\n";

  struct Edge {
    const char* name;
    metrics::MixPoint from;
    metrics::MixPoint to;
  };
  const std::vector<Edge> edges{
      {"native -> serverless", {1, 0, 0}, {0, 0, 1}},
      {"native -> container", {1, 0, 0}, {0, 1, 0}},
      {"serverless -> container", {0, 0, 1}, {0, 1, 0}},
  };

  for (const auto& edge : edges) {
    std::cout << edge.name << ":\n";
    for (double f : {0.0, 0.5, 1.0}) {
      metrics::MixPoint mix;
      mix.native = edge.from.native * (1 - f) + edge.to.native * f;
      mix.container = edge.from.container * (1 - f) + edge.to.container * f;
      mix.serverless =
          edge.from.serverless * (1 - f) + edge.to.serverless * f;
      const double makespan = measure(mix);
      const double isolation = metrics::isolation_score(mix);
      const int bar = static_cast<int>(makespan / 5.0);
      std::cout << "  f=" << std::setw(3) << f << "  makespan="
                << std::setw(7) << makespan << " s  isolation="
                << std::setw(5) << isolation << "  "
                << std::string(bar, '#') << '\n';
    }
    std::cout << '\n';
  }
  std::cout << "reading: longer bars = slower; isolation 0 = shared node, "
               "1 = container per task, 0.5 = reused serverless "
               "containers\n";
  return 0;
}
