// Autoscaling burst — watch the Knative control plane work.
//
// Registers the matmul function scaled to zero, fires a burst of 24
// parallel invocations, and narrates what the control plane does: the
// activator buffers the first requests (cold start), the KPA autoscaler
// panics and scales out, the burst drains, and after the grace period
// everything scales back to zero. The event timeline is reconstructed
// from the simulation trace.

#include <iostream>

#include "core/testbed.hpp"

using namespace sf;
using namespace sf::core;

int main() {
  std::cout << "Knative autoscaling timeline\n"
            << "============================\n\n";

  TestbedOptions opts;
  opts.provisioning = ProvisioningPolicy::deferred();
  opts.provisioning.container_concurrency = 1;
  opts.provisioning.target_concurrency = 1.0;
  // Short windows so scale-to-zero happens within the demo.
  PaperTestbed testbed(/*seed=*/7, opts);
  testbed.sim().trace().set_enabled(true);
  testbed.register_matmul_function();

  std::cout << "t=" << testbed.sim().now()
            << "s  service registered, replicas="
            << testbed.serving().ready_replicas("fn-matmul")
            << " (scaled to zero)\n";

  int completed = 0;
  constexpr int kBurst = 24;
  for (int i = 0; i < kBurst; ++i) {
    net::HttpRequest req;
    TaskPayload payload;
    payload.work_coreseconds = testbed.calibration().matmul_work_s;
    payload.output_bytes = 64;
    req.body = payload;
    req.body_bytes = 128;
    testbed.serving().invoke(testbed.cluster().node(0).net_id(),
                             "fn-matmul", std::move(req),
                             [&](net::HttpResponse resp) {
                               completed += resp.ok() ? 1 : 0;
                             });
  }
  std::cout << "t=" << testbed.sim().now() << "s  burst of " << kBurst
            << " invocations fired\n";

  while (completed < kBurst && testbed.sim().has_pending_events()) {
    testbed.sim().step();
  }
  std::cout << "t=" << testbed.sim().now() << "s  burst complete ("
            << completed << "/" << kBurst << " ok), replicas now "
            << testbed.serving().ready_replicas("fn-matmul") << "\n";

  // Let the idle windows elapse so the service returns to zero.
  testbed.sim().run_until(testbed.sim().now() + 120.0);
  std::cout << "t=" << testbed.sim().now()
            << "s  after idle grace period, replicas="
            << testbed.serving().ready_replicas("fn-matmul") << "\n\n";

  std::cout << "control-plane event timeline:\n";
  for (const auto e : testbed.sim().trace().find("knative")) {
    std::cout << "  t=" << e.time() << "s  " << e.name();
    for (std::size_t i = 0; i < e.attr_count(); ++i) {
      const auto [k, v] = e.attr_at(i);
      std::cout << ' ' << k << '=' << v;
    }
    std::cout << '\n';
  }
  const auto cold = testbed.serving().cold_start_requests("fn-matmul");
  std::cout << "\nrequests that waited in the activator (cold starts): "
            << cold << "\n";
  std::cout << "pods created over the episode: "
            << testbed.kube().controller_pods_created() << "\n";
  return 0;
}
