// Quickstart — the smallest end-to-end tour of ServerFlow.
//
// Builds the paper's 4-VM testbed, registers the matmul task as a Knative
// function, and runs one 5-task workflow in each execution environment
// (native / containerized / serverless), printing the makespans and the
// bytes that crossed the simulated network. Also multiplies two real
// 350×350 matrices with the actual kernel so you can see the workload is
// genuine, not a stub.

#include <iostream>

#include "core/testbed.hpp"
#include "metrics/table.hpp"
#include "workload/matrix.hpp"

using namespace sf;
using namespace sf::core;

namespace {

double run_mode(pegasus::JobMode mode) {
  PaperTestbed testbed(/*seed=*/42);
  if (mode == pegasus::JobMode::kServerless) {
    testbed.register_matmul_function();
  }
  auto workflow = workload::make_matmul_chain(
      "demo", 5, testbed.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : workflow.jobs()) modes[job.id] = mode;

  const auto result = testbed.run_workflows({workflow}, modes);
  std::cout << "  " << pegasus::to_string(mode)
            << ": makespan=" << result.slowest << " s, succeeded="
            << (result.all_succeeded ? "yes" : "NO") << ", network="
            << testbed.cluster().network().total_bytes_delivered() / 1e6
            << " MB\n";
  return result.slowest;
}

}  // namespace

int main() {
  std::cout << "ServerFlow quickstart\n=====================\n\n";

  // 1. The actual workload kernel, computed for real.
  sim::Rng rng(7);
  const auto a = workload::Matrix::random(workload::kPaperMatrixOrder, rng);
  const auto b = workload::Matrix::random(workload::kPaperMatrixOrder, rng);
  const double kernel_s = workload::measure_matmul_seconds(
      workload::kPaperMatrixOrder, rng);
  const auto c = a.multiply(b);
  std::cout << "real 350x350 matmul: " << kernel_s * 1e3 << " ms, c[0][0]="
            << c.at(0, 0) << ", payload " << c.bytes() / 1e3 << " kB\n\n";

  // 2. One 5-task workflow through each execution environment.
  std::cout << "5-task matmul chain on the simulated 4-VM testbed:\n";
  const double native = run_mode(pegasus::JobMode::kNative);
  const double serverless = run_mode(pegasus::JobMode::kServerless);
  const double container = run_mode(pegasus::JobMode::kContainer);

  std::cout << "\nserverless vs native: " << serverless / native
            << "x   container vs native: " << container / native << "x\n";
  std::cout << "(the paper's trade-off: containers buy isolation with "
               "time; serverless reuse claws most of it back)\n";
  return 0;
}
