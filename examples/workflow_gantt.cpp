// Workflow Gantt export — pegasus-statistics for the simulated runs.
//
// Plans and executes the Montage-like workflow, then prints the per-job
// timeline as CSV (node, worker, submit/start/end, queue wait, exec
// time) plus per-worker utilization — everything needed to draw the
// workflow's Gantt chart with any plotting tool:
//
//   ./workflow_gantt > gantt.csv
//   # then e.g.: python -c "import pandas; ..." or gnuplot

#include <iostream>

#include "core/testbed.hpp"
#include "pegasus/statistics.hpp"

using namespace sf;
using namespace sf::core;

int main() {
  PaperTestbed testbed(/*seed=*/42);
  workload::add_montage_transformations(
      testbed.transformations(),
      testbed.calibration().matmul_transformation());
  auto workflow = workload::make_montage_like(
      "mosaic", 6, testbed.calibration().matrix_bytes);
  workload::seed_initial_inputs(workflow, testbed.condor().submit_staging(),
                                testbed.replicas());

  pegasus::PlannerOptions options;
  options.registry = &testbed.registry();
  options.docker = &testbed.docker();
  pegasus::Planner planner(workflow, testbed.transformations(),
                           testbed.replicas(), testbed.condor(), options);
  const pegasus::Plan plan = planner.plan();
  condor::DagMan dag(testbed.condor());
  plan.load_into(dag);
  bool finished = false;
  dag.run([&finished](bool ok) {
    finished = true;
    if (!ok) std::cerr << "workflow failed\n";
  });
  while (!finished && testbed.sim().has_pending_events()) {
    testbed.sim().step();
  }

  std::vector<std::string> names;
  for (const auto& node : plan.nodes) names.push_back(node.name);
  const auto rows = pegasus::collect_gantt(dag, names);
  pegasus::write_gantt_csv(rows, std::cout);

  std::cerr << "\nmakespan: " << dag.makespan() << " s over "
            << rows.size() << " jobs\nworker utilization:\n";
  for (const auto& [worker, busy] :
       pegasus::worker_busy_fractions(rows, dag.makespan())) {
    std::cerr << "  " << worker << ": " << busy * 100 << "% busy\n";
  }
  return 0;
}
