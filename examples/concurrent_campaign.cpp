// Concurrent campaign — the paper's Section V experiment, end to end.
//
// Ten concurrent 10-task matmul workflows (Figure 4). Before the run,
// every task is randomly assigned one of the three execution
// environments according to a mix you pick on the command line:
//
//   ./concurrent_campaign [native_frac container_frac serverless_frac]
//
// Default mix is the paper's illustration: a third each. Prints the mode
// assignment histogram, per-workflow makespans and the slowest-workflow
// metric the paper reports.

#include <cstdlib>
#include <iostream>

#include "core/testbed.hpp"
#include "metrics/table.hpp"

using namespace sf;
using namespace sf::core;

int main(int argc, char** argv) {
  metrics::MixPoint mix{1.0 / 3, 1.0 / 3, 1.0 / 3};
  if (argc == 4) {
    mix.native = std::atof(argv[1]);
    mix.container = std::atof(argv[2]);
    mix.serverless = std::atof(argv[3]);
  }
  mix.validate();

  std::cout << "Concurrent workflow campaign (10 workflows x 10 tasks)\n"
            << "mix: native=" << mix.native
            << " container=" << mix.container
            << " serverless=" << mix.serverless << "\n\n";

  PaperTestbed testbed(/*seed=*/2024);
  testbed.register_matmul_function();
  std::cout << "fn-matmul registered with Knative, "
            << testbed.serving().ready_replicas("fn-matmul")
            << " warm pods ready at t=" << testbed.sim().now() << " s\n";

  const auto result = testbed.run_concurrent_mix(10, 10, mix);

  std::cout << "\ntask assignment:\n";
  for (const auto& [mode, count] : result.mode_counts) {
    std::cout << "  " << pegasus::to_string(mode) << ": " << count
              << " tasks\n";
  }

  metrics::Table table({"workflow", "makespan_s"}, 2);
  for (std::size_t i = 0; i < result.makespans.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(i), result.makespans[i]});
  }
  std::cout << '\n';
  table.print_text(std::cout);

  std::cout << "\nslowest-workflow makespan (the paper's metric): "
            << result.slowest << " s\n"
            << "isolation score of this mix: "
            << metrics::isolation_score(mix) << "\n"
            << "all workflows succeeded: "
            << (result.all_succeeded ? "yes" : "NO") << "\n"
            << "serverless invocations: "
            << testbed.integration().invocations() << " (failures: "
            << testbed.integration().failures() << ")\n";
  return result.all_succeeded ? 0 : 1;
}
