# Empty dependencies file for sf_knative.
# This may be replaced when dependencies are built.
