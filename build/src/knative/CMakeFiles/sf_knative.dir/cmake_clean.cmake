file(REMOVE_RECURSE
  "CMakeFiles/sf_knative.dir/eventing.cpp.o"
  "CMakeFiles/sf_knative.dir/eventing.cpp.o.d"
  "CMakeFiles/sf_knative.dir/kpa.cpp.o"
  "CMakeFiles/sf_knative.dir/kpa.cpp.o.d"
  "CMakeFiles/sf_knative.dir/queue_proxy.cpp.o"
  "CMakeFiles/sf_knative.dir/queue_proxy.cpp.o.d"
  "CMakeFiles/sf_knative.dir/serving.cpp.o"
  "CMakeFiles/sf_knative.dir/serving.cpp.o.d"
  "libsf_knative.a"
  "libsf_knative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_knative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
