file(REMOVE_RECURSE
  "libsf_knative.a"
)
