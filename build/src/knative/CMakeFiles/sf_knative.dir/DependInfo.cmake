
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knative/eventing.cpp" "src/knative/CMakeFiles/sf_knative.dir/eventing.cpp.o" "gcc" "src/knative/CMakeFiles/sf_knative.dir/eventing.cpp.o.d"
  "/root/repo/src/knative/kpa.cpp" "src/knative/CMakeFiles/sf_knative.dir/kpa.cpp.o" "gcc" "src/knative/CMakeFiles/sf_knative.dir/kpa.cpp.o.d"
  "/root/repo/src/knative/queue_proxy.cpp" "src/knative/CMakeFiles/sf_knative.dir/queue_proxy.cpp.o" "gcc" "src/knative/CMakeFiles/sf_knative.dir/queue_proxy.cpp.o.d"
  "/root/repo/src/knative/serving.cpp" "src/knative/CMakeFiles/sf_knative.dir/serving.cpp.o" "gcc" "src/knative/CMakeFiles/sf_knative.dir/serving.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/k8s/CMakeFiles/sf_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/sf_container.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
