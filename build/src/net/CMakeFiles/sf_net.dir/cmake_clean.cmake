file(REMOVE_RECURSE
  "CMakeFiles/sf_net.dir/flow_network.cpp.o"
  "CMakeFiles/sf_net.dir/flow_network.cpp.o.d"
  "CMakeFiles/sf_net.dir/http.cpp.o"
  "CMakeFiles/sf_net.dir/http.cpp.o.d"
  "libsf_net.a"
  "libsf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
