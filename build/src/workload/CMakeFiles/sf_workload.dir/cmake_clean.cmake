file(REMOVE_RECURSE
  "CMakeFiles/sf_workload.dir/generators.cpp.o"
  "CMakeFiles/sf_workload.dir/generators.cpp.o.d"
  "CMakeFiles/sf_workload.dir/matrix.cpp.o"
  "CMakeFiles/sf_workload.dir/matrix.cpp.o.d"
  "libsf_workload.a"
  "libsf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
