file(REMOVE_RECURSE
  "CMakeFiles/sf_pegasus.dir/abstract_workflow.cpp.o"
  "CMakeFiles/sf_pegasus.dir/abstract_workflow.cpp.o.d"
  "CMakeFiles/sf_pegasus.dir/planner.cpp.o"
  "CMakeFiles/sf_pegasus.dir/planner.cpp.o.d"
  "CMakeFiles/sf_pegasus.dir/statistics.cpp.o"
  "CMakeFiles/sf_pegasus.dir/statistics.cpp.o.d"
  "libsf_pegasus.a"
  "libsf_pegasus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_pegasus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
