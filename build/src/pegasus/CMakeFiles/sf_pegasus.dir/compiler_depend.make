# Empty compiler generated dependencies file for sf_pegasus.
# This may be replaced when dependencies are built.
