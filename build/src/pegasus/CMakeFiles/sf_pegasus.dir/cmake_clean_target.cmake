file(REMOVE_RECURSE
  "libsf_pegasus.a"
)
