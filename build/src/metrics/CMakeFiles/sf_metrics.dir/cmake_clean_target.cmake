file(REMOVE_RECURSE
  "libsf_metrics.a"
)
