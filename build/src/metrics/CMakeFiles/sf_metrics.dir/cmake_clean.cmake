file(REMOVE_RECURSE
  "CMakeFiles/sf_metrics.dir/regression.cpp.o"
  "CMakeFiles/sf_metrics.dir/regression.cpp.o.d"
  "CMakeFiles/sf_metrics.dir/stats.cpp.o"
  "CMakeFiles/sf_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/sf_metrics.dir/table.cpp.o"
  "CMakeFiles/sf_metrics.dir/table.cpp.o.d"
  "libsf_metrics.a"
  "libsf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
