# Empty dependencies file for sf_metrics.
# This may be replaced when dependencies are built.
