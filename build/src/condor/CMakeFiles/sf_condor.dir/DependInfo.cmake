
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/condor/dagman.cpp" "src/condor/CMakeFiles/sf_condor.dir/dagman.cpp.o" "gcc" "src/condor/CMakeFiles/sf_condor.dir/dagman.cpp.o.d"
  "/root/repo/src/condor/pool.cpp" "src/condor/CMakeFiles/sf_condor.dir/pool.cpp.o" "gcc" "src/condor/CMakeFiles/sf_condor.dir/pool.cpp.o.d"
  "/root/repo/src/condor/startd.cpp" "src/condor/CMakeFiles/sf_condor.dir/startd.cpp.o" "gcc" "src/condor/CMakeFiles/sf_condor.dir/startd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
