file(REMOVE_RECURSE
  "CMakeFiles/sf_condor.dir/dagman.cpp.o"
  "CMakeFiles/sf_condor.dir/dagman.cpp.o.d"
  "CMakeFiles/sf_condor.dir/pool.cpp.o"
  "CMakeFiles/sf_condor.dir/pool.cpp.o.d"
  "CMakeFiles/sf_condor.dir/startd.cpp.o"
  "CMakeFiles/sf_condor.dir/startd.cpp.o.d"
  "libsf_condor.a"
  "libsf_condor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_condor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
