# Empty compiler generated dependencies file for sf_condor.
# This may be replaced when dependencies are built.
