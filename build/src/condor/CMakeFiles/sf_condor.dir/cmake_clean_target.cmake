file(REMOVE_RECURSE
  "libsf_condor.a"
)
