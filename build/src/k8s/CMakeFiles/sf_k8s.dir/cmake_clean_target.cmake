file(REMOVE_RECURSE
  "libsf_k8s.a"
)
