# Empty dependencies file for sf_k8s.
# This may be replaced when dependencies are built.
