
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/k8s/api_server.cpp" "src/k8s/CMakeFiles/sf_k8s.dir/api_server.cpp.o" "gcc" "src/k8s/CMakeFiles/sf_k8s.dir/api_server.cpp.o.d"
  "/root/repo/src/k8s/controllers.cpp" "src/k8s/CMakeFiles/sf_k8s.dir/controllers.cpp.o" "gcc" "src/k8s/CMakeFiles/sf_k8s.dir/controllers.cpp.o.d"
  "/root/repo/src/k8s/kube_cluster.cpp" "src/k8s/CMakeFiles/sf_k8s.dir/kube_cluster.cpp.o" "gcc" "src/k8s/CMakeFiles/sf_k8s.dir/kube_cluster.cpp.o.d"
  "/root/repo/src/k8s/kubelet.cpp" "src/k8s/CMakeFiles/sf_k8s.dir/kubelet.cpp.o" "gcc" "src/k8s/CMakeFiles/sf_k8s.dir/kubelet.cpp.o.d"
  "/root/repo/src/k8s/objects.cpp" "src/k8s/CMakeFiles/sf_k8s.dir/objects.cpp.o" "gcc" "src/k8s/CMakeFiles/sf_k8s.dir/objects.cpp.o.d"
  "/root/repo/src/k8s/scheduler.cpp" "src/k8s/CMakeFiles/sf_k8s.dir/scheduler.cpp.o" "gcc" "src/k8s/CMakeFiles/sf_k8s.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/sf_container.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
