file(REMOVE_RECURSE
  "CMakeFiles/sf_k8s.dir/api_server.cpp.o"
  "CMakeFiles/sf_k8s.dir/api_server.cpp.o.d"
  "CMakeFiles/sf_k8s.dir/controllers.cpp.o"
  "CMakeFiles/sf_k8s.dir/controllers.cpp.o.d"
  "CMakeFiles/sf_k8s.dir/kube_cluster.cpp.o"
  "CMakeFiles/sf_k8s.dir/kube_cluster.cpp.o.d"
  "CMakeFiles/sf_k8s.dir/kubelet.cpp.o"
  "CMakeFiles/sf_k8s.dir/kubelet.cpp.o.d"
  "CMakeFiles/sf_k8s.dir/objects.cpp.o"
  "CMakeFiles/sf_k8s.dir/objects.cpp.o.d"
  "CMakeFiles/sf_k8s.dir/scheduler.cpp.o"
  "CMakeFiles/sf_k8s.dir/scheduler.cpp.o.d"
  "libsf_k8s.a"
  "libsf_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
