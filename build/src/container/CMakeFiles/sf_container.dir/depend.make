# Empty dependencies file for sf_container.
# This may be replaced when dependencies are built.
