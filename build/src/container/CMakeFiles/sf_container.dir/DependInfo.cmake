
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/container/image.cpp" "src/container/CMakeFiles/sf_container.dir/image.cpp.o" "gcc" "src/container/CMakeFiles/sf_container.dir/image.cpp.o.d"
  "/root/repo/src/container/image_cache.cpp" "src/container/CMakeFiles/sf_container.dir/image_cache.cpp.o" "gcc" "src/container/CMakeFiles/sf_container.dir/image_cache.cpp.o.d"
  "/root/repo/src/container/runtime.cpp" "src/container/CMakeFiles/sf_container.dir/runtime.cpp.o" "gcc" "src/container/CMakeFiles/sf_container.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
