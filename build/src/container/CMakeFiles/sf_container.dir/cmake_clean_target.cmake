file(REMOVE_RECURSE
  "libsf_container.a"
)
