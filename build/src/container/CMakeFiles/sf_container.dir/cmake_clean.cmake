file(REMOVE_RECURSE
  "CMakeFiles/sf_container.dir/image.cpp.o"
  "CMakeFiles/sf_container.dir/image.cpp.o.d"
  "CMakeFiles/sf_container.dir/image_cache.cpp.o"
  "CMakeFiles/sf_container.dir/image_cache.cpp.o.d"
  "CMakeFiles/sf_container.dir/runtime.cpp.o"
  "CMakeFiles/sf_container.dir/runtime.cpp.o.d"
  "libsf_container.a"
  "libsf_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
