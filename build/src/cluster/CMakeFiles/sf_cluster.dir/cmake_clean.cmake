file(REMOVE_RECURSE
  "CMakeFiles/sf_cluster.dir/cluster.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/sf_cluster.dir/node.cpp.o"
  "CMakeFiles/sf_cluster.dir/node.cpp.o.d"
  "libsf_cluster.a"
  "libsf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
