file(REMOVE_RECURSE
  "libsf_cluster.a"
)
