file(REMOVE_RECURSE
  "CMakeFiles/sf_storage.dir/object_store.cpp.o"
  "CMakeFiles/sf_storage.dir/object_store.cpp.o.d"
  "CMakeFiles/sf_storage.dir/replica_catalog.cpp.o"
  "CMakeFiles/sf_storage.dir/replica_catalog.cpp.o.d"
  "CMakeFiles/sf_storage.dir/shared_fs.cpp.o"
  "CMakeFiles/sf_storage.dir/shared_fs.cpp.o.d"
  "CMakeFiles/sf_storage.dir/volume.cpp.o"
  "CMakeFiles/sf_storage.dir/volume.cpp.o.d"
  "libsf_storage.a"
  "libsf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
