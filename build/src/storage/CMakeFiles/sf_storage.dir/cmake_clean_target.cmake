file(REMOVE_RECURSE
  "libsf_storage.a"
)
