# Empty compiler generated dependencies file for sf_storage.
# This may be replaced when dependencies are built.
