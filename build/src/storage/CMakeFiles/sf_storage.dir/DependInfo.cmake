
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/object_store.cpp" "src/storage/CMakeFiles/sf_storage.dir/object_store.cpp.o" "gcc" "src/storage/CMakeFiles/sf_storage.dir/object_store.cpp.o.d"
  "/root/repo/src/storage/replica_catalog.cpp" "src/storage/CMakeFiles/sf_storage.dir/replica_catalog.cpp.o" "gcc" "src/storage/CMakeFiles/sf_storage.dir/replica_catalog.cpp.o.d"
  "/root/repo/src/storage/shared_fs.cpp" "src/storage/CMakeFiles/sf_storage.dir/shared_fs.cpp.o" "gcc" "src/storage/CMakeFiles/sf_storage.dir/shared_fs.cpp.o.d"
  "/root/repo/src/storage/volume.cpp" "src/storage/CMakeFiles/sf_storage.dir/volume.cpp.o" "gcc" "src/storage/CMakeFiles/sf_storage.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
