file(REMOVE_RECURSE
  "CMakeFiles/sf_core.dir/event_driven.cpp.o"
  "CMakeFiles/sf_core.dir/event_driven.cpp.o.d"
  "CMakeFiles/sf_core.dir/integration.cpp.o"
  "CMakeFiles/sf_core.dir/integration.cpp.o.d"
  "CMakeFiles/sf_core.dir/redirect.cpp.o"
  "CMakeFiles/sf_core.dir/redirect.cpp.o.d"
  "CMakeFiles/sf_core.dir/testbed.cpp.o"
  "CMakeFiles/sf_core.dir/testbed.cpp.o.d"
  "libsf_core.a"
  "libsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
