file(REMOVE_RECURSE
  "CMakeFiles/sf_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sf_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sf_sim.dir/ps_resource.cpp.o"
  "CMakeFiles/sf_sim.dir/ps_resource.cpp.o.d"
  "CMakeFiles/sf_sim.dir/simulation.cpp.o"
  "CMakeFiles/sf_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/sf_sim.dir/trace.cpp.o"
  "CMakeFiles/sf_sim.dir/trace.cpp.o.d"
  "libsf_sim.a"
  "libsf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
