# Empty compiler generated dependencies file for autoscaling_burst.
# This may be replaced when dependencies are built.
