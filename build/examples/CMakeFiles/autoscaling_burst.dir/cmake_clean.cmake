file(REMOVE_RECURSE
  "CMakeFiles/autoscaling_burst.dir/autoscaling_burst.cpp.o"
  "CMakeFiles/autoscaling_burst.dir/autoscaling_burst.cpp.o.d"
  "autoscaling_burst"
  "autoscaling_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscaling_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
