file(REMOVE_RECURSE
  "CMakeFiles/workflow_gantt.dir/workflow_gantt.cpp.o"
  "CMakeFiles/workflow_gantt.dir/workflow_gantt.cpp.o.d"
  "workflow_gantt"
  "workflow_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
