# Empty dependencies file for workflow_gantt.
# This may be replaced when dependencies are built.
