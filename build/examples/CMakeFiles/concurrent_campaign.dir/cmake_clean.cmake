file(REMOVE_RECURSE
  "CMakeFiles/concurrent_campaign.dir/concurrent_campaign.cpp.o"
  "CMakeFiles/concurrent_campaign.dir/concurrent_campaign.cpp.o.d"
  "concurrent_campaign"
  "concurrent_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
