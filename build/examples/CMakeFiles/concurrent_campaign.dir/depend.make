# Empty dependencies file for concurrent_campaign.
# This may be replaced when dependencies are built.
