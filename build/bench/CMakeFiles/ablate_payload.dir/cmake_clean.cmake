file(REMOVE_RECURSE
  "CMakeFiles/ablate_payload.dir/ablate_payload.cpp.o"
  "CMakeFiles/ablate_payload.dir/ablate_payload.cpp.o.d"
  "ablate_payload"
  "ablate_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
