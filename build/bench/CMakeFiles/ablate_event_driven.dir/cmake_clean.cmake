file(REMOVE_RECURSE
  "CMakeFiles/ablate_event_driven.dir/ablate_event_driven.cpp.o"
  "CMakeFiles/ablate_event_driven.dir/ablate_event_driven.cpp.o.d"
  "ablate_event_driven"
  "ablate_event_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_event_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
