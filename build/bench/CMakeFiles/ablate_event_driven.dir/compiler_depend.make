# Empty compiler generated dependencies file for ablate_event_driven.
# This may be replaced when dependencies are built.
