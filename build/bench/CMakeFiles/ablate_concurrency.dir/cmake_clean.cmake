file(REMOVE_RECURSE
  "CMakeFiles/ablate_concurrency.dir/ablate_concurrency.cpp.o"
  "CMakeFiles/ablate_concurrency.dir/ablate_concurrency.cpp.o.d"
  "ablate_concurrency"
  "ablate_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
