file(REMOVE_RECURSE
  "CMakeFiles/ablate_complex_workflow.dir/ablate_complex_workflow.cpp.o"
  "CMakeFiles/ablate_complex_workflow.dir/ablate_complex_workflow.cpp.o.d"
  "ablate_complex_workflow"
  "ablate_complex_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_complex_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
