# Empty compiler generated dependencies file for ablate_complex_workflow.
# This may be replaced when dependencies are built.
