# Empty dependencies file for ablate_coldstart.
# This may be replaced when dependencies are built.
