file(REMOVE_RECURSE
  "CMakeFiles/ablate_coldstart.dir/ablate_coldstart.cpp.o"
  "CMakeFiles/ablate_coldstart.dir/ablate_coldstart.cpp.o.d"
  "ablate_coldstart"
  "ablate_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
