# Empty dependencies file for fig6_makespan_bars.
# This may be replaced when dependencies are built.
