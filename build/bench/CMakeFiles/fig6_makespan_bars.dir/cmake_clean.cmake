file(REMOVE_RECURSE
  "CMakeFiles/fig6_makespan_bars.dir/fig6_makespan_bars.cpp.o"
  "CMakeFiles/fig6_makespan_bars.dir/fig6_makespan_bars.cpp.o.d"
  "fig6_makespan_bars"
  "fig6_makespan_bars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_makespan_bars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
