# Empty compiler generated dependencies file for fig5_tradeoff_ternary.
# This may be replaced when dependencies are built.
