file(REMOVE_RECURSE
  "CMakeFiles/fig5_tradeoff_ternary.dir/fig5_tradeoff_ternary.cpp.o"
  "CMakeFiles/fig5_tradeoff_ternary.dir/fig5_tradeoff_ternary.cpp.o.d"
  "fig5_tradeoff_ternary"
  "fig5_tradeoff_ternary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tradeoff_ternary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
