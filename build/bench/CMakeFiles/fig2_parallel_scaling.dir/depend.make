# Empty dependencies file for fig2_parallel_scaling.
# This may be replaced when dependencies are built.
