# Empty dependencies file for fig1_container_reuse.
# This may be replaced when dependencies are built.
