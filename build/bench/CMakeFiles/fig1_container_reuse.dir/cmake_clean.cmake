file(REMOVE_RECURSE
  "CMakeFiles/fig1_container_reuse.dir/fig1_container_reuse.cpp.o"
  "CMakeFiles/fig1_container_reuse.dir/fig1_container_reuse.cpp.o.d"
  "fig1_container_reuse"
  "fig1_container_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_container_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
