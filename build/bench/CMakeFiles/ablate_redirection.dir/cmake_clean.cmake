file(REMOVE_RECURSE
  "CMakeFiles/ablate_redirection.dir/ablate_redirection.cpp.o"
  "CMakeFiles/ablate_redirection.dir/ablate_redirection.cpp.o.d"
  "ablate_redirection"
  "ablate_redirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
