# Empty compiler generated dependencies file for ablate_redirection.
# This may be replaced when dependencies are built.
