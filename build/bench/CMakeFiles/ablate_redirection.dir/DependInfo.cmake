
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_redirection.cpp" "bench/CMakeFiles/ablate_redirection.dir/ablate_redirection.cpp.o" "gcc" "bench/CMakeFiles/ablate_redirection.dir/ablate_redirection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/knative/CMakeFiles/sf_knative.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/sf_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pegasus/CMakeFiles/sf_pegasus.dir/DependInfo.cmake"
  "/root/repo/build/src/condor/CMakeFiles/sf_condor.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/sf_container.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sf_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
