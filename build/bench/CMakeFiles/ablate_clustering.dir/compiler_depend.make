# Empty compiler generated dependencies file for ablate_clustering.
# This may be replaced when dependencies are built.
