file(REMOVE_RECURSE
  "CMakeFiles/ablate_clustering.dir/ablate_clustering.cpp.o"
  "CMakeFiles/ablate_clustering.dir/ablate_clustering.cpp.o.d"
  "ablate_clustering"
  "ablate_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
