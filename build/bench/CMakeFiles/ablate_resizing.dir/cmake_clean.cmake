file(REMOVE_RECURSE
  "CMakeFiles/ablate_resizing.dir/ablate_resizing.cpp.o"
  "CMakeFiles/ablate_resizing.dir/ablate_resizing.cpp.o.d"
  "ablate_resizing"
  "ablate_resizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_resizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
