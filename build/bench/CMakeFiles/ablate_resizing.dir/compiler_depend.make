# Empty compiler generated dependencies file for ablate_resizing.
# This may be replaced when dependencies are built.
