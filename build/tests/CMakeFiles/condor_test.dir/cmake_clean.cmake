file(REMOVE_RECURSE
  "CMakeFiles/condor_test.dir/condor/dagman_test.cpp.o"
  "CMakeFiles/condor_test.dir/condor/dagman_test.cpp.o.d"
  "CMakeFiles/condor_test.dir/condor/matchmaking_test.cpp.o"
  "CMakeFiles/condor_test.dir/condor/matchmaking_test.cpp.o.d"
  "CMakeFiles/condor_test.dir/condor/pool_test.cpp.o"
  "CMakeFiles/condor_test.dir/condor/pool_test.cpp.o.d"
  "condor_test"
  "condor_test.pdb"
  "condor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
