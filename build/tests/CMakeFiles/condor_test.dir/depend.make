# Empty dependencies file for condor_test.
# This may be replaced when dependencies are built.
