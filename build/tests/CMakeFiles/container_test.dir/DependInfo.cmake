
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/container/image_test.cpp" "tests/CMakeFiles/container_test.dir/container/image_test.cpp.o" "gcc" "tests/CMakeFiles/container_test.dir/container/image_test.cpp.o.d"
  "/root/repo/tests/container/runtime_test.cpp" "tests/CMakeFiles/container_test.dir/container/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/container_test.dir/container/runtime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/container/CMakeFiles/sf_container.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
