
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics/regression_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/regression_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/regression_test.cpp.o.d"
  "/root/repo/tests/metrics/stats_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/stats_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/stats_test.cpp.o.d"
  "/root/repo/tests/metrics/table_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/table_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/table_test.cpp.o.d"
  "/root/repo/tests/metrics/ternary_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/ternary_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/ternary_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/sf_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
