file(REMOVE_RECURSE
  "CMakeFiles/metrics_test.dir/metrics/regression_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/regression_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/stats_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/stats_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/table_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/table_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/ternary_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/ternary_test.cpp.o.d"
  "metrics_test"
  "metrics_test.pdb"
  "metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
