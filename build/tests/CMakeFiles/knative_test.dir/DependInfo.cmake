
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/knative/canary_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/canary_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/canary_test.cpp.o.d"
  "/root/repo/tests/knative/eventing_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/eventing_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/eventing_test.cpp.o.d"
  "/root/repo/tests/knative/kpa_fuzz_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/kpa_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/kpa_fuzz_test.cpp.o.d"
  "/root/repo/tests/knative/kpa_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/kpa_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/kpa_test.cpp.o.d"
  "/root/repo/tests/knative/load_balancing_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/load_balancing_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/load_balancing_test.cpp.o.d"
  "/root/repo/tests/knative/queue_proxy_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/queue_proxy_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/queue_proxy_test.cpp.o.d"
  "/root/repo/tests/knative/rollout_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/rollout_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/rollout_test.cpp.o.d"
  "/root/repo/tests/knative/serving_test.cpp" "tests/CMakeFiles/knative_test.dir/knative/serving_test.cpp.o" "gcc" "tests/CMakeFiles/knative_test.dir/knative/serving_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/knative/CMakeFiles/sf_knative.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/sf_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/sf_container.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
