file(REMOVE_RECURSE
  "CMakeFiles/knative_test.dir/knative/canary_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/canary_test.cpp.o.d"
  "CMakeFiles/knative_test.dir/knative/eventing_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/eventing_test.cpp.o.d"
  "CMakeFiles/knative_test.dir/knative/kpa_fuzz_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/kpa_fuzz_test.cpp.o.d"
  "CMakeFiles/knative_test.dir/knative/kpa_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/kpa_test.cpp.o.d"
  "CMakeFiles/knative_test.dir/knative/load_balancing_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/load_balancing_test.cpp.o.d"
  "CMakeFiles/knative_test.dir/knative/queue_proxy_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/queue_proxy_test.cpp.o.d"
  "CMakeFiles/knative_test.dir/knative/rollout_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/rollout_test.cpp.o.d"
  "CMakeFiles/knative_test.dir/knative/serving_test.cpp.o"
  "CMakeFiles/knative_test.dir/knative/serving_test.cpp.o.d"
  "knative_test"
  "knative_test.pdb"
  "knative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
