
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/object_store_test.cpp" "tests/CMakeFiles/storage_test.dir/storage/object_store_test.cpp.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/object_store_test.cpp.o.d"
  "/root/repo/tests/storage/replica_catalog_test.cpp" "tests/CMakeFiles/storage_test.dir/storage/replica_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/replica_catalog_test.cpp.o.d"
  "/root/repo/tests/storage/shared_fs_test.cpp" "tests/CMakeFiles/storage_test.dir/storage/shared_fs_test.cpp.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/shared_fs_test.cpp.o.d"
  "/root/repo/tests/storage/volume_test.cpp" "tests/CMakeFiles/storage_test.dir/storage/volume_test.cpp.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/volume_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/sf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
