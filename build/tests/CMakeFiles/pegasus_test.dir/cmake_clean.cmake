file(REMOVE_RECURSE
  "CMakeFiles/pegasus_test.dir/pegasus/abstract_workflow_test.cpp.o"
  "CMakeFiles/pegasus_test.dir/pegasus/abstract_workflow_test.cpp.o.d"
  "CMakeFiles/pegasus_test.dir/pegasus/planner_test.cpp.o"
  "CMakeFiles/pegasus_test.dir/pegasus/planner_test.cpp.o.d"
  "CMakeFiles/pegasus_test.dir/pegasus/statistics_test.cpp.o"
  "CMakeFiles/pegasus_test.dir/pegasus/statistics_test.cpp.o.d"
  "pegasus_test"
  "pegasus_test.pdb"
  "pegasus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pegasus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
