
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pegasus/abstract_workflow_test.cpp" "tests/CMakeFiles/pegasus_test.dir/pegasus/abstract_workflow_test.cpp.o" "gcc" "tests/CMakeFiles/pegasus_test.dir/pegasus/abstract_workflow_test.cpp.o.d"
  "/root/repo/tests/pegasus/planner_test.cpp" "tests/CMakeFiles/pegasus_test.dir/pegasus/planner_test.cpp.o" "gcc" "tests/CMakeFiles/pegasus_test.dir/pegasus/planner_test.cpp.o.d"
  "/root/repo/tests/pegasus/statistics_test.cpp" "tests/CMakeFiles/pegasus_test.dir/pegasus/statistics_test.cpp.o" "gcc" "tests/CMakeFiles/pegasus_test.dir/pegasus/statistics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pegasus/CMakeFiles/sf_pegasus.dir/DependInfo.cmake"
  "/root/repo/build/src/condor/CMakeFiles/sf_condor.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/sf_container.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
