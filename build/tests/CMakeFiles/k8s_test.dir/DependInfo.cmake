
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/k8s/api_server_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/api_server_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/api_server_test.cpp.o.d"
  "/root/repo/tests/k8s/kube_cluster_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/kube_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/kube_cluster_test.cpp.o.d"
  "/root/repo/tests/k8s/scheduler_test.cpp" "tests/CMakeFiles/k8s_test.dir/k8s/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/k8s_test.dir/k8s/scheduler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/k8s/CMakeFiles/sf_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/sf_container.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
