# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/k8s_test[1]_include.cmake")
include("/root/repo/build/tests/knative_test[1]_include.cmake")
include("/root/repo/build/tests/condor_test[1]_include.cmake")
include("/root/repo/build/tests/pegasus_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
