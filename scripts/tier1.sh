#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (warnings are errors),
# and run the full test suite. This is the gate every change must pass.
#
# Usage: scripts/tier1.sh [build-dir]     (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
