#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (warnings are errors),
# and run the full test suite. This is the gate every change must pass.
#
# Usage: scripts/tier1.sh [build-dir]            (default: ./build)
#        scripts/tier1.sh --tsan [build-dir]     (default: ./build-tsan)
#        scripts/tier1.sh --asan [build-dir]     (default: ./build-asan)
#        scripts/tier1.sh --chaos [build-dir]    (default: ./build)
#        scripts/tier1.sh --fuzz [build-dir]     (default: ./build)
#
# --tsan builds the engine + tests under ThreadSanitizer and runs the
# SweepRunner suite — the only code that spawns threads. Keep it green:
# a data race there silently breaks the bit-identical-results contract.
#
# --asan builds everything under AddressSanitizer + UBSan and runs the
# full suite. The failure-recovery paths cancel events and tear down
# pods/claims/containers out from under in-flight continuations; ASan is
# what catches a stale `this` or use-after-free the happy path never
# trips.
#
# --chaos builds bench/chaos_sweep and runs its smoke subset at 1 and 4
# sweep threads, diffing both against the committed golden transcript.
# Any drift — between thread counts or against the golden — means the
# structured-chaos determinism contract broke.
#
# --fuzz builds bench/fuzz_sim and runs the pinned 32-point property-
# fuzzer smoke sweep (each point twice, replay fingerprints compared)
# at 1 and 4 sweep threads, diffing both against the committed golden.
# Runs in seconds; scripts/fuzz.sh drives wider sweeps.
#
# --scale builds bench/scale_sweep and runs its smoke subset (small
# open-loop serving + layered-DAG points) at 1 and 4 sweep threads,
# diffing both against the committed golden transcript. Drift means the
# open-loop engine or the scaled control-plane stores lost determinism.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

if [[ "${1:-}" == "--scale" ]]; then
  build_dir="${2:-$repo_root/build}"
  golden="$repo_root/tests/golden/scale_smoke.txt"
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" --target scale_sweep -j
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  SF_SCALE_SMOKE=1 SF_SWEEP_THREADS=1 \
    "$build_dir/bench/scale_sweep" > "$tmp/serial.txt"
  SF_SCALE_SMOKE=1 SF_SWEEP_THREADS=4 \
    "$build_dir/bench/scale_sweep" > "$tmp/parallel.txt"
  diff -u "$tmp/serial.txt" "$tmp/parallel.txt" \
    || { echo "scale smoke: thread counts disagree" >&2; exit 1; }
  diff -u "$golden" "$tmp/serial.txt" \
    || { echo "scale smoke: drifted from golden transcript" >&2; exit 1; }
  echo "scale smoke: bit-identical at 1 and 4 threads, matches golden"
  exit 0
fi

if [[ "${1:-}" == "--fuzz" ]]; then
  build_dir="${2:-$repo_root/build}"
  golden="$repo_root/tests/golden/fuzz_smoke.txt"
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" --target fuzz_sim -j
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  SF_FUZZ_SMOKE=1 SF_SWEEP_THREADS=1 \
    "$build_dir/bench/fuzz_sim" > "$tmp/serial.txt"
  SF_FUZZ_SMOKE=1 SF_SWEEP_THREADS=4 \
    "$build_dir/bench/fuzz_sim" > "$tmp/parallel.txt"
  diff -u "$tmp/serial.txt" "$tmp/parallel.txt" \
    || { echo "fuzz smoke: thread counts disagree" >&2; exit 1; }
  diff -u "$golden" "$tmp/serial.txt" \
    || { echo "fuzz smoke: drifted from golden transcript" >&2; exit 1; }
  echo "fuzz smoke: bit-identical at 1 and 4 threads, matches golden"
  exit 0
fi

if [[ "${1:-}" == "--chaos" ]]; then
  build_dir="${2:-$repo_root/build}"
  golden="$repo_root/tests/golden/chaos_smoke.txt"
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" --target chaos_sweep -j
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  SF_CHAOS_SMOKE=1 SF_SWEEP_THREADS=1 \
    "$build_dir/bench/chaos_sweep" > "$tmp/serial.txt"
  SF_CHAOS_SMOKE=1 SF_SWEEP_THREADS=4 \
    "$build_dir/bench/chaos_sweep" > "$tmp/parallel.txt"
  diff -u "$tmp/serial.txt" "$tmp/parallel.txt" \
    || { echo "chaos smoke: thread counts disagree" >&2; exit 1; }
  diff -u "$golden" "$tmp/serial.txt" \
    || { echo "chaos smoke: drifted from golden transcript" >&2; exit 1; }
  echo "chaos smoke: bit-identical at 1 and 4 threads, matches golden"
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  build_dir="${2:-$repo_root/build-asan}"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -g" \
    -DSERVERFLOW_BUILD_BENCH=OFF \
    -DSERVERFLOW_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  build_dir="${2:-$repo_root/build-tsan}"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g" \
    -DSERVERFLOW_BUILD_BENCH=OFF \
    -DSERVERFLOW_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" --target sim_test -j
  ctest --test-dir "$build_dir" --output-on-failure -R 'SweepRunnerTest' \
    -j "$(nproc)"
  exit 0
fi

build_dir="${1:-$repo_root/build}"
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
