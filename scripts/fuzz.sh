#!/usr/bin/env bash
# Property fuzzer driver: seed-swept deterministic simulation testing.
#
# Each point draws a randomized (seed x topology x workload x fault-plan)
# case, runs it to quiesce under the sf::check invariant registry, runs
# it twice, and requires: every DAG accounted for, finite makespan, zero
# invariant violations, bit-identical replay fingerprints. On failure
# the case is automatically shrunk and printed as a ready-to-paste gtest
# regression test (exit code 1).
#
# Usage: scripts/fuzz.sh                  pinned 32-point smoke (seconds)
#        scripts/fuzz.sh --sweep [N]      N random points (default 256),
#                                         base seed from SF_FUZZ_BASE or
#                                         a caller-supplied --base
#        scripts/fuzz.sh --sweep N --base SEED
#
# The smoke subset is the tier-1 leg: tier1.sh --fuzz additionally diffs
# its output against tests/golden/fuzz_smoke.txt at 1 and 4 threads.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" --target fuzz_sim -j > /dev/null

if [[ "${1:-}" == "--sweep" ]]; then
  points="${2:-256}"
  base="${SF_FUZZ_BASE:-0xF0CC5EED}"
  if [[ "${3:-}" == "--base" ]]; then
    base="$4"
  fi
  echo "fuzz sweep: $points points, base seed $base"
  SF_FUZZ_POINTS="$points" SF_FUZZ_BASE="$base" "$build_dir/bench/fuzz_sim"
  exit $?
fi

SF_FUZZ_SMOKE=1 "$build_dir/bench/fuzz_sim"
