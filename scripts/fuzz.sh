#!/usr/bin/env bash
# Property fuzzer driver: seed-swept deterministic simulation testing.
#
# Each point draws a randomized (seed x topology x workload x fault-plan)
# case, runs it to quiesce under the sf::check invariant registry, runs
# it twice, and requires: every DAG accounted for, finite makespan, zero
# invariant violations, bit-identical replay fingerprints. On failure
# the case is automatically shrunk and printed as a ready-to-paste gtest
# regression test (exit code 1).
#
# Usage: scripts/fuzz.sh                  pinned 32-point smoke (seconds)
#        scripts/fuzz.sh --sweep [N]      N random points (default 256)
#        scripts/fuzz.sh --sweep N --base SEED
#
# Sweep base seed, in priority order: --base, then SF_FUZZ_BASE, then a
# hash of today's UTC date. The date default rotates the searched region
# nightly — an unattended cron invocation explores fresh cases every
# night instead of re-running the same 256 points forever — while
# staying reproducible: re-running on the same date (or passing that
# day's printed seed via --base) replays the exact sweep.
#
# Repro banking: a failing sweep shrinks the case and prints a pasteable
# `TEST(FuzzRegression, CaseN)` block. Bank it by pasting into
# tests/check/fuzz_regression_test.cpp (see the header there: rename
# after the bug, keep every field). The printed fields pin the case
# forever, so nothing else from the failing night needs to be saved.
#
# The smoke subset is the tier-1 leg: tier1.sh --fuzz additionally diffs
# its output against tests/golden/fuzz_smoke.txt at 1 and 4 threads.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" --target fuzz_sim -j > /dev/null

if [[ "${1:-}" == "--sweep" ]]; then
  points="${2:-256}"
  # Knuth multiplicative hash of YYYYMMDD, masked to 32 bits.
  date_base="$(printf '0x%08X' $(( ($(date -u +%Y%m%d) * 2654435761) & 0xFFFFFFFF )))"
  base="${SF_FUZZ_BASE:-$date_base}"
  if [[ "${3:-}" == "--base" ]]; then
    base="$4"
  fi
  echo "fuzz sweep: $points points, base seed $base"
  SF_FUZZ_POINTS="$points" SF_FUZZ_BASE="$base" "$build_dir/bench/fuzz_sim"
  exit $?
fi

SF_FUZZ_SMOKE=1 "$build_dir/bench/fuzz_sim"
